"""Identification-experiment data containers.

An :class:`ExperimentData` records the sampled inputs (actuated + external
signals) and outputs of one training run.  Multiple runs (the paper trains
on six programs) are merged for a single fit; each segment keeps its own
regression window so transients at run boundaries never leak across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ExperimentData", "merge_experiments"]


@dataclass
class ExperimentData:
    """Sampled input/output data from one identification run."""

    inputs: np.ndarray  # (T, n_u)
    outputs: np.ndarray  # (T, n_y)
    dt: float
    input_names: list = field(default_factory=list)
    output_names: list = field(default_factory=list)
    label: str = ""

    def __post_init__(self):
        self.inputs = np.atleast_2d(np.asarray(self.inputs, dtype=float))
        self.outputs = np.atleast_2d(np.asarray(self.outputs, dtype=float))
        if self.inputs.shape[0] != self.outputs.shape[0]:
            raise ValueError(
                f"inputs ({self.inputs.shape[0]} samples) and outputs "
                f"({self.outputs.shape[0]} samples) must be the same length"
            )
        if self.dt <= 0:
            raise ValueError("dt must be positive")

    @property
    def n_samples(self):
        return self.inputs.shape[0]

    @property
    def n_inputs(self):
        return self.inputs.shape[1]

    @property
    def n_outputs(self):
        return self.outputs.shape[1]

    def normalized(self):
        """Return (data, input_scale, output_scale, input_offset, output_offset).

        Centering and scaling per channel; identification on normalized data
        is far better conditioned when signals span different magnitudes
        (GHz next to Watts next to Kelvin).
        """
        u_off = self.inputs.mean(axis=0)
        y_off = self.outputs.mean(axis=0)
        u_scale = np.maximum(self.inputs.std(axis=0), 1e-9)
        y_scale = np.maximum(self.outputs.std(axis=0), 1e-9)
        data = ExperimentData(
            (self.inputs - u_off) / u_scale,
            (self.outputs - y_off) / y_scale,
            self.dt,
            self.input_names,
            self.output_names,
            self.label,
        )
        return data, u_scale, y_scale, u_off, y_off

    def split(self, fraction=0.7):
        """Chronological train/validation split."""
        cut = int(self.n_samples * fraction)
        train = ExperimentData(
            self.inputs[:cut], self.outputs[:cut], self.dt,
            self.input_names, self.output_names, self.label + ":train",
        )
        valid = ExperimentData(
            self.inputs[cut:], self.outputs[cut:], self.dt,
            self.input_names, self.output_names, self.label + ":valid",
        )
        return train, valid


def merge_experiments(experiments):
    """Concatenate runs, recording segment boundaries.

    Returns ``(merged_data, boundaries)`` where ``boundaries`` holds the
    starting sample index of each original run inside the merged arrays.
    Fitting code uses the boundaries to drop regression rows whose lag
    window crosses a run boundary.
    """
    experiments = list(experiments)
    if not experiments:
        raise ValueError("need at least one experiment")
    dt = experiments[0].dt
    for exp in experiments:
        if exp.dt != dt:
            raise ValueError("all experiments must share the same dt")
        if exp.n_inputs != experiments[0].n_inputs:
            raise ValueError("all experiments must have the same input channels")
        if exp.n_outputs != experiments[0].n_outputs:
            raise ValueError("all experiments must have the same output channels")
    boundaries = []
    offset = 0
    for exp in experiments:
        boundaries.append(offset)
        offset += exp.n_samples
    merged = ExperimentData(
        np.vstack([e.inputs for e in experiments]),
        np.vstack([e.outputs for e in experiments]),
        dt,
        experiments[0].input_names,
        experiments[0].output_names,
        "+".join(e.label for e in experiments),
    )
    return merged, boundaries
