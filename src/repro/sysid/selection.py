"""Model-order selection and residual diagnostics.

The paper states its identified models "have dimension four"; a real
identification campaign arrives at such a number by sweeping candidate
orders and scoring them on criteria that penalize complexity, then checking
that the winning model's residuals look like noise.  Both steps are
provided here:

* :func:`select_arx_order` — sweep (na, nb) over a grid, score by Akaike's
  FPE on training data and fit on held-out data, return the ranked sweep;
* :func:`residual_whiteness` — Ljung-Box-style portmanteau statistic on the
  one-step residuals (white residuals mean the model captured the
  predictable dynamics);
* :func:`residual_input_correlation` — cross-correlation of residuals with
  past inputs (structure left on the table if significant).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .arx import build_regression, fit_arx
from .experiment import ExperimentData
from .validation import final_prediction_error, fit_percent

__all__ = [
    "OrderCandidate",
    "select_arx_order",
    "residual_whiteness",
    "residual_input_correlation",
]


@dataclass
class OrderCandidate:
    """One point of the order sweep."""

    na: int
    nb: int
    n_params: int
    fpe: float
    validation_fit: float  # mean held-out one-step fit %

    def __repr__(self):
        return (
            f"OrderCandidate(na={self.na}, nb={self.nb}, fpe={self.fpe:.4g}, "
            f"val_fit={self.validation_fit:.1f}%)"
        )


def _one_step_prediction_fit(model, data: ExperimentData):
    Phi, Y = build_regression(data, model.na, model.nb, model.delay)
    theta_blocks = [model.A_coeffs[i].T for i in range(model.na)]
    theta_blocks += [model.B_coeffs[j].T for j in range(model.nb)]
    theta = np.vstack(theta_blocks)
    Y_hat = Phi @ theta
    return float(np.mean(fit_percent(Y, Y_hat)))


def select_arx_order(
    data: ExperimentData,
    na_grid=(1, 2, 3, 4, 6),
    nb_grid=(1, 2, 3, 4),
    delay=1,
    boundaries=None,
    train_fraction=0.7,
):
    """Sweep ARX orders; returns candidates sorted best-first.

    Ranking is by held-out fit, with FPE as the tie-breaker — the standard
    guard against the always-fits-better-in-sample trap.
    """
    train, valid = data.split(train_fraction)
    candidates = []
    for na in na_grid:
        for nb in nb_grid:
            try:
                model = fit_arx(train, na=na, nb=nb, delay=delay,
                                boundaries=boundaries)
            except ValueError:
                continue
            n_params = (na * data.n_outputs + nb * data.n_inputs) * data.n_outputs
            fpe = final_prediction_error(
                model.noise_variance, train.n_samples, n_params
            )
            try:
                val_fit = _one_step_prediction_fit(model, valid)
            except ValueError:
                continue
            candidates.append(OrderCandidate(na, nb, n_params, fpe, val_fit))
    if not candidates:
        raise ValueError("no candidate order could be fit on this data")
    candidates.sort(key=lambda c: (-c.validation_fit, c.fpe))
    return candidates


@dataclass
class WhitenessReport:
    statistic: float
    threshold: float
    lags: int
    white: bool

    def summary(self):
        verdict = "white" if self.white else "NOT white"
        return (
            f"Ljung-Box Q={self.statistic:.1f} vs threshold "
            f"{self.threshold:.1f} over {self.lags} lags: residuals {verdict}"
        )


def residual_whiteness(residuals, lags=10, significance=3.0):
    """Portmanteau whiteness check on (multi-channel) residuals.

    Uses the Ljung-Box statistic per channel and compares against
    ``lags + significance * sqrt(2 * lags)`` (a normal approximation of the
    chi-square tail — dependency-free and adequate for a diagnostic).
    """
    residuals = np.atleast_2d(np.asarray(residuals, dtype=float))
    if residuals.shape[0] < residuals.shape[1]:
        residuals = residuals.T
    n = residuals.shape[0]
    if n <= lags + 1:
        raise ValueError("not enough samples for the requested lag count")
    worst = 0.0
    for ch in range(residuals.shape[1]):
        x = residuals[:, ch] - residuals[:, ch].mean()
        denom = float(np.dot(x, x))
        if denom <= 1e-30:
            continue
        q = 0.0
        for lag in range(1, lags + 1):
            rho = float(np.dot(x[lag:], x[:-lag])) / denom
            q += rho * rho / (n - lag)
        q *= n * (n + 2)
        worst = max(worst, q)
    threshold = lags + significance * np.sqrt(2.0 * lags)
    return WhitenessReport(worst, float(threshold), lags, bool(worst <= threshold))


def residual_input_correlation(residuals, inputs, lags=8):
    """Max |cross-correlation| between residuals and lagged inputs.

    Values near zero mean no predictable input effect was left unmodelled.
    """
    residuals = np.atleast_2d(np.asarray(residuals, dtype=float))
    inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
    if residuals.shape[0] < residuals.shape[1]:
        residuals = residuals.T
    if inputs.shape[0] < inputs.shape[1]:
        inputs = inputs.T
    n = min(residuals.shape[0], inputs.shape[0])
    residuals = residuals[:n] - residuals[:n].mean(axis=0)
    inputs = inputs[:n] - inputs[:n].mean(axis=0)
    worst = 0.0
    for ch_r in range(residuals.shape[1]):
        r = residuals[:, ch_r]
        r_norm = np.linalg.norm(r)
        if r_norm < 1e-15:
            continue
        for ch_u in range(inputs.shape[1]):
            u = inputs[:, ch_u]
            u_norm = np.linalg.norm(u)
            if u_norm < 1e-15:
                continue
            for lag in range(1, lags + 1):
                rho = float(np.dot(r[lag:], u[:-lag])) / (r_norm * u_norm)
                worst = max(worst, abs(rho))
    return worst
