"""Black-box system identification substrate.

This package plays the role of MATLAB's System Identification toolbox in the
paper's design flow (Sec. IV-C): staircase/PRBS excitation experiments are
run on the (simulated) board, and the recorded input/output data is fit to a
dynamic model — ARX by least squares, refined into a Box-Jenkins-style model
by iterative prediction-error minimization, or realized directly in state
space by subspace identification.
"""

from .arx import ARXModel, fit_arx
from .boxjenkins import BoxJenkinsModel, fit_box_jenkins
from .excitation import prbs, staircase, multilevel_random
from .experiment import ExperimentData, merge_experiments
from .graybox import GrayBoxModel, center_per_run, fit_graybox
from .selection import (
    OrderCandidate,
    residual_input_correlation,
    residual_whiteness,
    select_arx_order,
)
from .subspace import fit_subspace
from .validation import fit_percent, final_prediction_error, validate_model

__all__ = [
    "prbs",
    "staircase",
    "multilevel_random",
    "ExperimentData",
    "merge_experiments",
    "ARXModel",
    "fit_arx",
    "BoxJenkinsModel",
    "fit_box_jenkins",
    "fit_subspace",
    "GrayBoxModel",
    "fit_graybox",
    "center_per_run",
    "OrderCandidate",
    "select_arx_order",
    "residual_whiteness",
    "residual_input_correlation",
    "fit_percent",
    "final_prediction_error",
    "validate_model",
]
