"""Subspace (N4SID-flavoured) state-space identification.

Subspace identification realizes a state-space model directly from data via
an SVD of projected block-Hankel matrices — no iterative optimization, and
the model order is chosen by inspecting singular values.  We use the
MOESP-style projection: project the future-output row space onto past data
along the future-input row space, extract the extended observability matrix
from the dominant left singular vectors, and recover (A, C) by the shift
trick and (B, D) by linear regression on the simulated response.
"""

from __future__ import annotations

import numpy as np

from ..lti import StateSpace
from .experiment import ExperimentData

__all__ = ["fit_subspace"]


def _block_hankel(data, start, n_block_rows, n_cols):
    """Stack ``n_block_rows`` shifted copies of ``data`` rows into a Hankel matrix."""
    channels = data.shape[1]
    H = np.zeros((n_block_rows * channels, n_cols))
    for i in range(n_block_rows):
        H[i * channels : (i + 1) * channels, :] = data[start + i : start + i + n_cols].T
    return H


def fit_subspace(data: ExperimentData, order=4, horizon=None, ridge=1e-9):
    """Identify a discrete state-space model of the given order.

    Parameters
    ----------
    order:
        Desired state dimension.
    horizon:
        Block-Hankel depth (defaults to ``2 * order + 2``).

    Returns
    -------
    ``(model, singular_values)`` — the model and the projection singular
    values (useful for order selection).
    """
    n_u, n_y = data.n_inputs, data.n_outputs
    horizon = horizon or (2 * order + 2)
    n_cols = data.n_samples - 2 * horizon + 1
    if n_cols < 4 * horizon * (n_u + n_y):
        raise ValueError(
            f"not enough data: {data.n_samples} samples for horizon {horizon}"
        )
    U_past = _block_hankel(data.inputs, 0, horizon, n_cols)
    U_future = _block_hankel(data.inputs, horizon, horizon, n_cols)
    Y_past = _block_hankel(data.outputs, 0, horizon, n_cols)
    Y_future = _block_hankel(data.outputs, horizon, horizon, n_cols)
    W_past = np.vstack([U_past, Y_past])

    # Project future outputs orthogonally to future inputs (MOESP).
    def project_out(M, basis):
        gram = basis @ basis.T + ridge * np.eye(basis.shape[0])
        return M - (M @ basis.T) @ np.linalg.solve(gram, basis)

    Yf_perp = project_out(Y_future, U_future)
    Wp_perp = project_out(W_past, U_future)
    # Oblique-ish projection: regression of Yf_perp onto Wp_perp.
    gram = Wp_perp @ Wp_perp.T + ridge * np.eye(Wp_perp.shape[0])
    O_proj = (Yf_perp @ Wp_perp.T) @ np.linalg.solve(gram, Wp_perp)
    U_svd, s, _ = np.linalg.svd(O_proj, full_matrices=False)
    order = min(order, int(np.sum(s > 1e-10)))
    if order == 0:
        raise ValueError("data has no identifiable dynamics")
    # Extended observability matrix Gamma = U_svd * sqrt(S).
    gamma = U_svd[:, :order] * np.sqrt(s[:order])
    C = gamma[:n_y, :]
    # Shift trick for A: gamma_up * A = gamma_down.
    gamma_up = gamma[: (horizon - 1) * n_y, :]
    gamma_down = gamma[n_y:, :]
    A, *_ = np.linalg.lstsq(gamma_up, gamma_down, rcond=None)
    # Clamp any marginally unstable eigenvalues introduced by noise.
    eigvals = np.linalg.eigvals(A)
    radius = np.max(np.abs(eigvals)) if eigvals.size else 0.0
    if radius >= 1.0:
        A = A * (0.995 / radius)
    # Recover B, D (and x0) by least squares on the measured response:
    # y[t] = C A^t x0 + sum_k C A^{t-1-k} B u[k] + D u[t]  — linear in (x0, B, D).
    B, D = _estimate_b_d(A, C, data, ridge)
    model = StateSpace(A, B, C, D, dt=data.dt)
    return model, s


def _estimate_b_d(A, C, data: ExperimentData, ridge, estimate_d=False):
    """Linear regression for B (and optionally D) given A and C."""
    n = A.shape[0]
    n_u, n_y = data.n_inputs, data.n_outputs
    steps = min(data.n_samples, 600)  # cap cost; plenty for low-order models
    u = data.inputs[:steps]
    y = data.outputs[:steps]
    # Precompute C A^k.
    CAk = np.zeros((steps, n_y, n))
    CAk[0] = C
    for t in range(1, steps):
        CAk[t] = CAk[t - 1] @ A
    # Unknowns: x0 (n), vec(B) (n*n_u), vec(D) (n_y*n_u if estimated).
    n_params = n + n * n_u + (n_y * n_u if estimate_d else 0)
    Phi = np.zeros((steps * n_y, n_params))
    for t in range(steps):
        rows = slice(t * n_y, (t + 1) * n_y)
        Phi[rows, :n] = CAk[t]
        # Contribution of B: sum_{k<t} C A^{t-1-k} (u[k] kron ...)
        for k in range(t):
            block = CAk[t - 1 - k]  # (n_y, n)
            for j in range(n_u):
                cols = slice(n + j * n, n + (j + 1) * n)
                Phi[rows, cols] += block * u[k, j]
        if estimate_d:
            for j in range(n_u):
                cols = slice(n + n_u * n + j * n_y, n + n_u * n + (j + 1) * n_y)
                Phi[rows, cols] = np.eye(n_y) * u[t, j]
    target = y.reshape(-1)
    gram = Phi.T @ Phi + ridge * np.eye(n_params)
    theta = np.linalg.solve(gram, Phi.T @ target)
    B = np.zeros((n, n_u))
    for j in range(n_u):
        B[:, j] = theta[n + j * n : n + (j + 1) * n]
    if estimate_d:
        D = theta[n + n_u * n :].reshape(n_u, n_y).T
    else:
        D = np.zeros((n_y, n_u))
    return B, D
