"""Box-Jenkins-style prediction-error refinement.

A Box-Jenkins model separates the deterministic dynamics from the noise
colouring: ``y = G(q) u + H(q) e``.  The classic fitting route is iterative
prediction-error minimization.  We implement the pragmatic pseudo-linear
regression variant (a.k.a. extended least squares): start from an ARX fit,
estimate the residual sequence, then re-fit including lagged residuals as
extra regressors (the C-polynomial), iterating until the one-step
prediction error stops improving.  The deterministic part ``G`` is what the
controller synthesis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arx import ARXModel, build_regression, fit_arx
from .experiment import ExperimentData

__all__ = ["BoxJenkinsModel", "fit_box_jenkins"]


@dataclass
class BoxJenkinsModel:
    """An ARX deterministic core plus a moving-average noise model."""

    deterministic: ARXModel
    C_coeffs: np.ndarray  # (nc, n_y, n_y) MA coefficients on residuals
    prediction_error: float
    iterations: int

    @property
    def dt(self):
        return self.deterministic.dt

    def to_statespace(self):
        """State-space realization of the deterministic part (what K sees)."""
        return self.deterministic.to_statespace()

    def simulate(self, u_sequence, y0=None):
        return self.deterministic.simulate(u_sequence, y0)


def _theta_from(model: ARXModel):
    n_y = model.n_outputs
    blocks = [model.A_coeffs[i].T for i in range(model.na)]
    blocks += [model.B_coeffs[j].T for j in range(model.nb)]
    return np.vstack(blocks) if blocks else np.zeros((0, n_y))


def fit_box_jenkins(
    data: ExperimentData,
    na=4,
    nb=4,
    nc=2,
    delay=1,
    boundaries=None,
    max_iter=10,
    tol=1e-6,
    ridge=1e-8,
):
    """Fit a Box-Jenkins-style model by pseudo-linear regression.

    Parameters mirror :func:`~repro.sysid.arx.fit_arx`, plus ``nc``, the
    order of the moving-average residual model.
    """
    arx = fit_arx(data, na, nb, delay, boundaries, ridge)
    Phi, Y = build_regression(data, na, nb, delay, boundaries)
    theta = _theta_from(arx)
    residuals = Y - Phi @ theta
    n_y, n_u = data.n_outputs, data.n_inputs
    best_error = float(np.mean(residuals ** 2))
    best = (arx, np.zeros((nc, n_y, n_y)), best_error, 0)
    for iteration in range(1, max_iter + 1):
        # Extended regression: append lagged residuals as extra inputs.
        rows = Phi.shape[0]
        ext = np.zeros((rows, nc * n_y))
        for lag in range(1, nc + 1):
            ext[lag:, (lag - 1) * n_y : lag * n_y] = residuals[:-lag]
        Phi_ext = np.hstack([Phi, ext])
        gram = Phi_ext.T @ Phi_ext + ridge * np.eye(Phi_ext.shape[1])
        theta_ext = np.linalg.solve(gram, Phi_ext.T @ Y)
        new_residuals = Y - Phi_ext @ theta_ext
        error = float(np.mean(new_residuals ** 2))
        # Unpack deterministic part.
        A_coeffs = np.zeros((na, n_y, n_y))
        B_coeffs = np.zeros((nb, n_y, n_u))
        offset = 0
        for i in range(na):
            A_coeffs[i] = theta_ext[offset : offset + n_y, :].T
            offset += n_y
        for j in range(nb):
            B_coeffs[j] = theta_ext[offset : offset + n_u, :].T
            offset += n_u
        C_coeffs = np.zeros((nc, n_y, n_y))
        for lag in range(nc):
            C_coeffs[lag] = theta_ext[offset : offset + n_y, :].T
            offset += n_y
        candidate = ARXModel(
            A_coeffs, B_coeffs, delay, data.dt, new_residuals.var(axis=0)
        )
        if error < best[2]:
            best = (candidate, C_coeffs, error, iteration)
        if abs(best_error - error) <= tol * max(best_error, 1e-30):
            break
        best_error = error
        residuals = new_residuals
    deterministic, C_coeffs, error, iterations = best
    return BoxJenkinsModel(deterministic, C_coeffs, error, iterations)
