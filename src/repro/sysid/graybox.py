"""Gray-box identification: static gain matrix behind per-output lags.

The board's sampled dynamics are dominated by static maps (performance and
power respond within a sample) seen through first-order lags (the windowed
power sensors, the thermal RC).  That structure — ``y_i`` following
``(G0 u)_i`` through a one-pole lag — is fit here by alternating least
squares:

1. estimate each output's pole from the partial autocorrelation of the
   output, given the current gain estimate;
2. filter the inputs through each output's lag and re-estimate the gain
   matrix row by ordinary least squares;
3. repeat.

Per-run centering removes program-specific offsets before fitting (merged
training runs have wildly different operating points), which is what keeps
the estimated DC gains unbiased where one-shot ARX fits are badly shrunk.
The result is a dimension-``n_y`` state-space model — the paper's
"dimension four" for the four-output hardware layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lti import StateSpace
from .experiment import ExperimentData

__all__ = ["GrayBoxModel", "fit_graybox", "center_per_run"]


@dataclass
class GrayBoxModel:
    """y_i[t+1] = a_i y_i[t] + (1 - a_i) (G0 u[t])_i."""

    gain: np.ndarray  # (n_y, n_u) static gain
    poles: np.ndarray  # (n_y,) in [0, 1)
    dt: float
    residual_rms: np.ndarray = None

    @property
    def n_outputs(self):
        return self.gain.shape[0]

    @property
    def n_inputs(self):
        return self.gain.shape[1]

    def to_statespace(self):
        A = np.diag(self.poles)
        B = np.diag(1.0 - self.poles) @ self.gain
        C = np.eye(self.n_outputs)
        D = np.zeros_like(self.gain)
        return StateSpace(A, B, C, D, dt=self.dt)

    def simulate(self, u_sequence, y0=None):
        u_sequence = np.atleast_2d(np.asarray(u_sequence, dtype=float))
        steps = u_sequence.shape[0]
        ys = np.zeros((steps, self.n_outputs))
        state = np.zeros(self.n_outputs) if y0 is None else np.asarray(y0[0], float).copy()
        for t in range(steps):
            ys[t] = state
            drive = self.gain @ u_sequence[t]
            state = self.poles * state + (1.0 - self.poles) * drive
        return ys


def center_per_run(data: ExperimentData, boundaries):
    """Subtract each training run's mean from its inputs and outputs."""
    u = data.inputs.copy()
    y = data.outputs.copy()
    edges = sorted(boundaries) + [data.n_samples]
    for a, b in zip(edges[:-1], edges[1:]):
        if b > a:
            u[a:b] -= u[a:b].mean(axis=0)
            y[a:b] -= y[a:b].mean(axis=0)
    return ExperimentData(u, y, data.dt, data.input_names, data.output_names,
                          data.label + ":centered")


def _fit_gain_given_poles(u, y, poles, boundaries, ridge):
    """OLS for G0 rows with inputs pre-filtered through each output's lag."""
    n_y = y.shape[1]
    n_u = u.shape[1]
    gain = np.zeros((n_y, n_u))
    edges = sorted(boundaries) + [u.shape[0]]
    for i in range(n_y):
        a = poles[i]
        rows_u = []
        rows_y = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            filt = np.zeros(n_u)
            for t in range(lo, hi):
                filt = a * filt + (1.0 - a) * u[t]
                if t + 1 < hi:
                    rows_u.append(filt.copy())
                    rows_y.append(y[t + 1, i])
        Phi = np.asarray(rows_u)
        target = np.asarray(rows_y)
        gram = Phi.T @ Phi + ridge * np.eye(n_u)
        gain[i] = np.linalg.solve(gram, Phi.T @ target)
    return gain


def _fit_poles_given_gain(u, y, gain, boundaries, pole_grid):
    """Grid search per output for the best lag pole."""
    n_y = y.shape[1]
    poles = np.zeros(n_y)
    edges = sorted(boundaries) + [u.shape[0]]
    drives = u @ gain.T  # (T, n_y)
    for i in range(n_y):
        best_err = np.inf
        best_a = 0.0
        for a in pole_grid:
            err = 0.0
            for lo, hi in zip(edges[:-1], edges[1:]):
                state = y[lo, i]
                for t in range(lo, hi - 1):
                    state = a * state + (1.0 - a) * drives[t, i]
                    err += (y[t + 1, i] - state) ** 2
            if err < best_err:
                best_err = err
                best_a = a
        poles[i] = best_a
    return poles


def fit_graybox(
    data: ExperimentData,
    boundaries=None,
    iterations=3,
    ridge=1e-6,
    pole_grid=None,
    center=True,
) -> GrayBoxModel:
    """Fit the lag-plus-static-gain model by alternating least squares."""
    boundaries = list(boundaries or [0])
    if center:
        data = center_per_run(data, boundaries)
    u = data.inputs
    y = data.outputs
    if pole_grid is None:
        pole_grid = np.concatenate([[0.0], np.linspace(0.05, 0.97, 24)])
    poles = np.full(y.shape[1], 0.3)
    gain = None
    for _ in range(iterations):
        gain = _fit_gain_given_poles(u, y, poles, boundaries, ridge)
        poles = _fit_poles_given_gain(u, y, gain, boundaries, pole_grid)
    gain = _fit_gain_given_poles(u, y, poles, boundaries, ridge)
    model = GrayBoxModel(gain, poles, data.dt)
    residual = y - model.simulate(u, y0=y[:1])
    model.residual_rms = np.sqrt(np.mean(residual**2, axis=0))
    return model
