"""Model validation metrics.

The design flow (Fig. 3) ends each layer's modelling step with validation;
these are the standard measures: normalized fit percentage (MATLAB's
``compare``-style metric), Akaike's final prediction error, and a composite
validator that simulates the model against held-out data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["fit_percent", "final_prediction_error", "validate_model", "ValidationReport"]


def fit_percent(y_true, y_model):
    """Per-channel normalized fit: 100 * (1 - ||y - yhat|| / ||y - mean||)."""
    y_true = np.atleast_2d(np.asarray(y_true, dtype=float))
    y_model = np.atleast_2d(np.asarray(y_model, dtype=float))
    if y_true.shape != y_model.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_model.shape}")
    fits = np.zeros(y_true.shape[1])
    for ch in range(y_true.shape[1]):
        err = np.linalg.norm(y_true[:, ch] - y_model[:, ch])
        ref = np.linalg.norm(y_true[:, ch] - y_true[:, ch].mean())
        fits[ch] = 100.0 * (1.0 - err / max(ref, 1e-12))
    return fits


def final_prediction_error(residual_variance, n_samples, n_params):
    """Akaike FPE = V * (1 + k/N) / (1 - k/N)."""
    if n_samples <= n_params:
        return np.inf
    ratio = n_params / n_samples
    return float(np.mean(residual_variance) * (1 + ratio) / (1 - ratio))


@dataclass
class ValidationReport:
    """Outcome of validating a model against held-out data."""

    fit_per_output: np.ndarray
    mean_fit: float
    rms_error: np.ndarray
    acceptable: bool

    def summary(self):
        fits = ", ".join(f"{f:.1f}%" for f in self.fit_per_output)
        verdict = "PASS" if self.acceptable else "FAIL"
        return f"[{verdict}] fit per output: {fits} (mean {self.mean_fit:.1f}%)"


def validate_model(model, data, min_fit=30.0, one_step=True):
    """Simulate ``model`` over validation data and score the prediction.

    ``model`` may be anything with ``simulate(u, y0)`` (ARX/BJ models) or a
    discrete :class:`~repro.lti.StateSpace`.  With ``one_step=False``, a
    free-run simulation is scored instead of one-step prediction (harsher).
    """
    u = data.inputs
    y = data.outputs
    if hasattr(model, "A_coeffs") or hasattr(model, "deterministic"):
        if one_step:
            y_hat = _one_step_prediction(model, u, y)
        else:
            warmup = 8
            y_hat = model.simulate(u, y0=y[:warmup])
    else:  # StateSpace: free run from zero state
        _, y_hat = model.simulate(u)
    fits = fit_percent(y, y_hat)
    rms = np.sqrt(np.mean((y - y_hat) ** 2, axis=0))
    mean_fit = float(np.mean(fits))
    return ValidationReport(fits, mean_fit, rms, mean_fit >= min_fit)


def _one_step_prediction(model, u, y):
    core = model.deterministic if hasattr(model, "deterministic") else model
    steps = u.shape[0]
    y_hat = np.array(y, dtype=float, copy=True)
    start = max(core.na, core.delay + core.nb - 1)
    for t in range(start, steps):
        y_hist = [y[t - 1 - i] for i in range(core.na)]
        u_hist = [u[t - core.delay - j] for j in range(core.nb)]
        y_hat[t] = core.predict_one_step(y_hist, u_hist)
    return y_hat
