"""Excitation-signal design for identification experiments.

System identification quality is bounded by how informative the excitation
is.  The classic choices are provided: pseudo-random binary sequences (PRBS,
rich in frequency content), staircases (good for quantized actuators such as
DVFS levels), and multilevel random sequences with a dwell time (so slow
outputs like temperature get time to respond).
"""

from __future__ import annotations

import numpy as np

__all__ = ["prbs", "staircase", "multilevel_random"]


def prbs(steps, low, high, seed=0, dwell=1):
    """Pseudo-random binary sequence alternating between two levels.

    Parameters
    ----------
    steps:
        Total length of the sequence.
    dwell:
        Hold each random draw for this many steps (shifts excitation energy
        toward low frequencies, where thermal/power dynamics live).
    """
    if dwell < 1:
        raise ValueError("dwell must be >= 1")
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, 2, size=(steps + dwell - 1) // dwell)
    sequence = np.repeat(draws, dwell)[:steps]
    return np.where(sequence == 1, float(high), float(low))


def staircase(steps, levels, dwell):
    """Sweep through ``levels`` in order, holding each for ``dwell`` steps.

    Wraps around if the staircase is shorter than ``steps``; this is the
    excitation used against quantized knobs (frequency levels, core counts).
    """
    levels = np.asarray(list(levels), dtype=float)
    if levels.size == 0:
        raise ValueError("levels must be non-empty")
    if dwell < 1:
        raise ValueError("dwell must be >= 1")
    pattern = np.repeat(levels, dwell)
    reps = int(np.ceil(steps / pattern.size))
    return np.tile(pattern, reps)[:steps]


def multilevel_random(steps, levels, dwell, seed=0):
    """Random walk over a discrete level set with a dwell time."""
    levels = np.asarray(list(levels), dtype=float)
    if levels.size == 0:
        raise ValueError("levels must be non-empty")
    rng = np.random.default_rng(seed)
    n_draws = (steps + dwell - 1) // dwell
    draws = rng.integers(0, levels.size, size=n_draws)
    return np.repeat(levels[draws], dwell)[:steps]
