"""Heterogeneous workload mixes (Sec. VI-C).

Each mix combines a 4-threaded PARSEC program with 4 copies of a SPEC
program, matching the paper's blmc / stga / blst / mcga combinations.  A mix
is just a list of concurrently-running applications; the runner measures
energy and delay until the *last* member finishes.
"""

from __future__ import annotations

from .app import Application, Phase
from .library import PARSEC_PROGRAMS, SPEC_PROGRAMS, make_application

__all__ = ["MIXES", "make_mix", "mix_names"]


def _halved_parsec(name):
    """A 4-threaded, half-sized instance of a PARSEC program."""
    base = make_application(name)
    phases = []
    for phase in base.phases:
        threads = max(1, phase.n_threads // 2)
        phases.append(
            Phase(
                phase.name,
                threads,
                phase.instructions * 0.5,
                phase.cpi_scale,
                phase.mpki,
                phase.activity,
                phase.barrier,
            )
        )
    return Application(f"{name}@4t", phases)


def _halved_spec(name):
    """4 copies (half-sized rate run) of a SPEC program."""
    base = make_application(name)
    phases = []
    for phase in base.phases:
        threads = max(1, phase.n_threads // 2)
        phases.append(
            Phase(
                phase.name,
                threads,
                phase.instructions * 0.5,
                phase.cpi_scale,
                phase.mpki,
                phase.activity,
                phase.barrier,
            )
        )
    return Application(f"{name}@4c", phases)


MIXES = {
    "blmc": ("blackscholes", "mcf"),
    "stga": ("streamcluster", "gamess"),
    "blst": ("blackscholes", "streamcluster"),
    "mcga": ("mcf", "gamess"),
}


def make_mix(name):
    """Instantiate the two concurrent members of a named mix."""
    try:
        first, second = MIXES[name]
    except KeyError:
        raise KeyError(f"unknown mix {name!r}; known: {sorted(MIXES)}") from None
    members = []
    for member in (first, second):
        if member in PARSEC_PROGRAMS:
            members.append(_halved_parsec(member))
        elif member in SPEC_PROGRAMS:
            members.append(_halved_spec(member))
        else:
            raise KeyError(f"mix member {member!r} is not a known program")
    return members


def mix_names():
    return list(MIXES)
