"""The named program set used in the paper's evaluation.

These are *synthetic* applications shaped after the cited PARSEC / SPEC2006
programs: thread structure, phase behaviour, and compute-vs-memory character
follow the public characterization literature (serial ramp in blackscholes,
variable-thread phases in x264, strongly memory-bound mcf/canneal/
streamcluster, compute-bound gamess/gromacs, and so on).  Instruction
budgets are scaled to keep full simulations tractable while preserving the
relative run lengths.

Evaluation set (Sec. V-A): 8-threaded PARSEC programs and 8 copies of SPEC
programs.  Training set: swaptions, vips, astar, perlbench, milc, namd.
"""

from __future__ import annotations

from .app import Application, Phase

# Global scale on instruction budgets.  At 2.0 the full runs take roughly
# 120-250 simulated seconds under a reasonable controller — matching the
# paper's run lengths closely enough that controller start-up transients
# carry a realistic (small) share of each run.
SCALE = 2.0

__all__ = [
    "PARSEC_PROGRAMS",
    "SPEC_PROGRAMS",
    "TRAINING_PROGRAMS",
    "EVALUATION_PROGRAMS",
    "make_application",
    "program_names",
]


def _parallel_app(name, giga, threads=8, cpi=1.0, mpki=1.0, activity=1.0,
                  serial_fraction=0.0, barrier=False, phases=None):
    """Helper: optional serial ramp followed by a parallel bulk phase."""
    if phases is None:
        giga = giga * SCALE
        phases = []
        if serial_fraction > 0:
            phases.append(
                Phase(f"{name}:serial", 1, giga * serial_fraction, cpi, mpki, activity)
            )
        phases.append(
            Phase(
                f"{name}:parallel",
                threads,
                giga * (1.0 - serial_fraction),
                cpi,
                mpki,
                activity,
                barrier=barrier,
            )
        )
    return lambda: Application(name, phases_copy(phases))


def phases_copy(phases):
    return [
        Phase(p.name, p.n_threads, p.instructions, p.cpi_scale, p.mpki, p.activity,
              p.barrier)
        for p in phases
    ]


def _spec_rate_app(name, giga_per_copy, copies=8, cpi=1.0, mpki=1.0, activity=1.0):
    """8 independent single-thread copies = one barrier phase of 8 threads."""
    phases = [
        Phase(
            f"{name}:rate",
            copies,
            giga_per_copy * copies * SCALE,
            cpi,
            mpki,
            activity,
            barrier=True,
        )
    ]
    return lambda: Application(name, phases_copy(phases))


# ---------------------------------------------------------------------------
# PARSEC (8-threaded, native-input shaped)
# ---------------------------------------------------------------------------
PARSEC_PROGRAMS = {
    # blackscholes: single-thread start, then a steady 8-way parallel phase
    # with little variation (the paper leans on this structure in Fig. 10/11).
    "blackscholes": _parallel_app(
        "blackscholes", giga=330.0, cpi=0.95, mpki=0.5, activity=1.0,
        serial_fraction=0.06,
    ),
    # bodytrack: alternating high/low-parallelism stages per frame.
    "bodytrack": lambda: Application(
        "bodytrack",
        [
            phase
            for frame in range(6)
            for phase in (
                Phase(f"bodytrack:track{frame}", 8, 34.0 * SCALE, 1.05, 1.6, 0.95),
                Phase(f"bodytrack:refine{frame}", 2, 7.0 * SCALE, 1.0, 1.0, 0.9),
            )
        ],
    ),
    "facesim": _parallel_app(
        "facesim", giga=300.0, cpi=1.15, mpki=3.2, activity=0.9, barrier=True,
    ),
    "fluidanimate": _parallel_app(
        "fluidanimate", giga=290.0, cpi=1.1, mpki=2.4, activity=0.95, barrier=True,
    ),
    "raytrace": _parallel_app(
        "raytrace", giga=320.0, cpi=0.9, mpki=0.9, activity=1.0,
        serial_fraction=0.03,
    ),
    # x264: bursty, variable thread counts across encode stages.
    "x264": lambda: Application(
        "x264",
        [
            phase
            for gop in range(4)
            for phase in (
                Phase(f"x264:analyze{gop}", 4, 22.0 * SCALE, 0.95, 1.2, 1.0),
                Phase(f"x264:encode{gop}", 8, 52.0 * SCALE, 1.0, 1.8, 1.0),
                Phase(f"x264:flush{gop}", 2, 5.0 * SCALE, 1.0, 0.8, 0.85),
            )
        ],
    ),
    "canneal": _parallel_app(
        "canneal", giga=160.0, cpi=1.2, mpki=14.0, activity=0.65,
    ),
    "streamcluster": _parallel_app(
        "streamcluster", giga=200.0, cpi=1.1, mpki=10.0, activity=0.7, barrier=True,
    ),
}

# ---------------------------------------------------------------------------
# SPEC2006 (8 copies, train-input shaped)
# ---------------------------------------------------------------------------
SPEC_PROGRAMS = {
    "h264ref": _spec_rate_app("h264ref", 42.0, cpi=0.9, mpki=0.8, activity=1.0),
    "mcf": _spec_rate_app("mcf", 20.0, cpi=1.25, mpki=22.0, activity=0.55),
    "omnetpp": _spec_rate_app("omnetpp", 28.0, cpi=1.15, mpki=8.5, activity=0.75),
    "gamess": _spec_rate_app("gamess", 45.0, cpi=0.85, mpki=0.4, activity=1.05),
    "gromacs": _spec_rate_app("gromacs", 40.0, cpi=0.9, mpki=1.1, activity=1.0),
    "dealII": _spec_rate_app("dealII", 36.0, cpi=1.0, mpki=3.0, activity=0.9),
}

# ---------------------------------------------------------------------------
# Training set (Sec. V-A: disjoint from evaluation)
# ---------------------------------------------------------------------------
TRAINING_PROGRAMS = {
    "swaptions": _parallel_app(
        "swaptions", giga=200.0, cpi=0.95, mpki=0.6, activity=1.0,
    ),
    "vips": lambda: Application(
        "vips",
        [
            Phase("vips:setup", 1, 6.0, 1.0, 1.5, 0.9),
            Phase("vips:pipeline", 8, 150.0, 1.05, 2.8, 0.9),
        ],  # training runs stay short: characterization cost, not fidelity
    ),
    "astar": _spec_rate_app("astar", 24.0, cpi=1.1, mpki=6.0, activity=0.8),
    "perlbench": _spec_rate_app("perlbench", 30.0, cpi=1.0, mpki=1.8, activity=0.95),
    "milc": _spec_rate_app("milc", 22.0, cpi=1.15, mpki=12.0, activity=0.65),
    "namd": _spec_rate_app("namd", 38.0, cpi=0.9, mpki=0.7, activity=1.0),
}

EVALUATION_PROGRAMS = {**SPEC_PROGRAMS, **PARSEC_PROGRAMS}

_ALL = {**PARSEC_PROGRAMS, **SPEC_PROGRAMS, **TRAINING_PROGRAMS}


def make_application(name) -> Application:
    """Instantiate a fresh run of a named program."""
    try:
        factory = _ALL[name]
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; known: {sorted(_ALL)}"
        ) from None
    return factory()


def program_names(group="evaluation"):
    """Names in a group: 'parsec', 'spec', 'training', or 'evaluation'."""
    groups = {
        "parsec": PARSEC_PROGRAMS,
        "spec": SPEC_PROGRAMS,
        "training": TRAINING_PROGRAMS,
        "evaluation": EVALUATION_PROGRAMS,
    }
    return list(groups[group])
