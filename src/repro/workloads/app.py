"""Synthetic phase-structured applications.

An :class:`Application` is a sequence of :class:`Phase` objects.  Each phase
declares how many threads run, the instruction budget, and the execution
character (execute-CPI multiplier, memory misses per kilo-instruction,
switching activity).  Threads inside a phase draw work from a shared pool
unless the phase is ``barrier``-style, in which case each thread owns an
equal share and stragglers idle at the barrier — that is how the simulated
programs reproduce the dynamics (phase changes, thread-count changes,
memory-boundedness) that the paper's controllers react to.

Instruction budgets are expressed in giga-instructions; the defaults in
:mod:`repro.workloads.library` are scaled so full runs take tens to a couple
of hundred simulated seconds, preserving the paper's relative timing shape
at a tractable simulation cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Phase", "Application", "Thread"]


@dataclass(frozen=True)
class Phase:
    """One execution phase of an application."""

    name: str
    n_threads: int
    instructions: float  # total giga-instructions in the phase
    cpi_scale: float = 1.0  # multiplies the core's execute CPI
    mpki: float = 1.0  # last-level misses per kilo-instruction
    activity: float = 1.0  # switching-activity factor (power)
    barrier: bool = False  # per-thread budgets with a barrier at the end

    def __post_init__(self):
        if self.n_threads < 1:
            raise ValueError("phase needs at least one thread")
        if self.instructions <= 0:
            raise ValueError("phase needs a positive instruction budget")


@dataclass
class Thread:
    """Runtime state of one application thread."""

    thread_id: int
    app_name: str
    remaining: float = 0.0  # giga-instructions left (barrier phases)
    active: bool = True
    migration_stall: float = 0.0  # seconds of pending migration penalty
    # Threads are placement-dict keys on every simulator tick; hashing the
    # (app_name, thread_id) tuple each lookup showed up in profiles.
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self):
        self._hash = hash((self.app_name, self.thread_id))

    def __hash__(self):
        return self._hash


class Application:
    """Runtime state machine over a phase list."""

    def __init__(self, name, phases, arrival_time=0.0):
        if not phases:
            raise ValueError("application needs at least one phase")
        self.name = name
        self.phases = list(phases)
        self.arrival_time = arrival_time
        self.phase_index = 0
        self.pool_remaining = 0.0  # shared-pool giga-instructions
        self.threads = []
        self.completed_instructions = 0.0
        self.finish_time = None
        self._enter_phase(0)

    # ------------------------------------------------------------------
    def _enter_phase(self, index):
        self.phase_index = index
        phase = self.phases[index]
        self.threads = [
            Thread(thread_id=i, app_name=self.name) for i in range(phase.n_threads)
        ]
        if phase.barrier:
            share = phase.instructions / phase.n_threads
            for thread in self.threads:
                thread.remaining = share
        else:
            self.pool_remaining = phase.instructions

    @property
    def current_phase(self) -> Phase:
        return self.phases[self.phase_index]

    @property
    def done(self):
        return self.finish_time is not None

    def runnable_threads(self):
        """Threads that still have work in the current phase."""
        if self.done:
            return []
        phase = self.current_phase
        if phase.barrier:
            return [t for t in self.threads if t.remaining > 0]
        if self.pool_remaining > 0:
            return list(self.threads)
        return []

    def total_remaining(self):
        """Giga-instructions left across all remaining phases."""
        if self.done:
            return 0.0
        phase = self.current_phase
        current = (
            sum(t.remaining for t in self.threads)
            if phase.barrier
            else self.pool_remaining
        )
        future = sum(p.instructions for p in self.phases[self.phase_index + 1 :])
        return current + future

    def execute(self, thread: Thread, giga_instructions, now):
        """Credit executed work to a thread; advances phases when done."""
        if self.done or giga_instructions <= 0:
            return
        phase = self.current_phase
        if phase.barrier:
            work = min(giga_instructions, thread.remaining)
            thread.remaining -= work
        else:
            work = min(giga_instructions, self.pool_remaining)
            self.pool_remaining -= work
        self.completed_instructions += work
        self._maybe_advance(now)

    def _maybe_advance(self, now):
        phase = self.current_phase
        if phase.barrier:
            finished = all(t.remaining <= 1e-12 for t in self.threads)
        else:
            finished = self.pool_remaining <= 1e-12
        if not finished:
            return
        if self.phase_index + 1 < len(self.phases):
            self._enter_phase(self.phase_index + 1)
        else:
            self.finish_time = now

    def __repr__(self):
        status = "done" if self.done else f"phase {self.phase_index}"
        return f"Application({self.name}, {status})"
