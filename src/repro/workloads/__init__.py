"""Synthetic workloads shaped after the paper's PARSEC/SPEC evaluation set."""

from .app import Application, Phase, Thread
from .library import (
    EVALUATION_PROGRAMS,
    PARSEC_PROGRAMS,
    SPEC_PROGRAMS,
    TRAINING_PROGRAMS,
    make_application,
    program_names,
)
from .mixes import MIXES, make_mix, mix_names

__all__ = [
    "Application",
    "Phase",
    "Thread",
    "PARSEC_PROGRAMS",
    "SPEC_PROGRAMS",
    "TRAINING_PROGRAMS",
    "EVALUATION_PROGRAMS",
    "make_application",
    "program_names",
    "MIXES",
    "make_mix",
    "mix_names",
]
