"""System norms: H2, H-infinity, and frequency-gridded singular values.

The H-infinity norm is the workhorse of the robust stack: synthesis results
are *validated* by computing the achieved closed-loop norm rather than
trusting the synthesis formulas.  We therefore implement both a fast
bisection based on Hamiltonian / symplectic eigenvalue tests and a gridded
fallback that is immune to the edge cases of the eigenvalue test.
"""

from __future__ import annotations

import numpy as np

from .lyapunov import controllability_gramian
from .statespace import StateSpace

__all__ = [
    "h2_norm",
    "hinf_norm",
    "frequency_grid",
    "singular_value_plot",
    "linf_norm_grid",
]


def h2_norm(system: StateSpace):
    """H2 norm of a stable, strictly proper (continuous) or proper (discrete) system."""
    if not system.is_stable():
        return np.inf
    if not system.is_discrete and np.any(system.D != 0.0):
        return np.inf
    gram = controllability_gramian(system)
    value = np.trace(system.C @ gram @ system.C.T)
    if system.is_discrete:
        value += np.trace(system.D @ system.D.T)
    return float(np.sqrt(max(value, 0.0)))


def frequency_grid(system: StateSpace, points=400):
    """A log-spaced frequency grid adapted to the system's pole locations."""
    poles = system.poles()
    if system.is_discrete:
        nyquist = np.pi / system.dt
        low = nyquist * 1e-4
        return np.logspace(np.log10(low), np.log10(nyquist * 0.999), points)
    magnitudes = np.abs(poles[np.abs(poles) > 1e-12]) if poles.size else np.array([])
    low = 0.01 * magnitudes.min() if magnitudes.size else 1e-3
    high = 100.0 * magnitudes.max() if magnitudes.size else 1e3
    return np.logspace(np.log10(low), np.log10(high), points)


def singular_value_plot(system: StateSpace, omegas=None):
    """Maximum singular value of the transfer matrix over a frequency grid."""
    if omegas is None:
        omegas = frequency_grid(system)
    gains = np.empty(len(omegas))
    for i, omega in enumerate(omegas):
        response = system.at_frequency(omega)
        gains[i] = np.linalg.svd(response, compute_uv=False)[0]
    return np.asarray(omegas), gains


def linf_norm_grid(system: StateSpace, points=600):
    """Peak gain over a frequency grid (cheap lower bound on the Hinf norm)."""
    omegas = list(frequency_grid(system, points))
    if system.is_discrete:
        omegas.append(0.0)  # include DC explicitly
    peak = 0.0
    for omega in omegas:
        response = system.at_frequency(omega)
        gain = np.linalg.svd(response, compute_uv=False)[0]
        peak = max(peak, float(gain))
    return peak


def _has_unit_circle_eigs(A, B, C, D, gamma, dt):
    """Symplectic-pencil test: does the discrete system hit gain gamma?"""
    m = B.shape[1]
    p = C.shape[0]
    n = A.shape[0]
    R = gamma * gamma * np.eye(m) - D.T @ D
    try:
        R_inv = np.linalg.inv(R)
    except np.linalg.LinAlgError:
        return True
    # Build the symplectic pencil (Hinf characterization, e.g. Hung 1989).
    S = gamma * gamma * np.eye(p) - D @ D.T
    try:
        S_inv = np.linalg.inv(S)
    except np.linalg.LinAlgError:
        return True
    E = np.block(
        [
            [np.eye(n), -B @ R_inv @ B.T],
            [np.zeros((n, n)), (A + B @ R_inv @ D.T @ C).T],
        ]
    )
    F = np.block(
        [
            [A + B @ R_inv @ D.T @ C, np.zeros((n, n))],
            [-C.T @ S_inv @ C, np.eye(n)],
        ]
    )
    try:
        from scipy.linalg import eig

        eigvals = eig(F, E, right=False)
    except Exception:  # pragma: no cover - LAPACK failure fallback
        return True
    finite = eigvals[np.isfinite(eigvals)]
    return bool(np.any(np.abs(np.abs(finite) - 1.0) < 1e-7))


def _hamiltonian_has_imag_eigs(A, B, C, D, gamma):
    """Hamiltonian test for continuous-time systems (Boyd-Balakrishnan)."""
    m = B.shape[1]
    R = gamma * gamma * np.eye(m) - D.T @ D
    try:
        R_inv = np.linalg.inv(R)
    except np.linalg.LinAlgError:
        return True
    H11 = A + B @ R_inv @ D.T @ C
    H12 = B @ R_inv @ B.T
    H21 = -C.T @ (np.eye(C.shape[0]) + D @ R_inv @ D.T) @ C
    H = np.block([[H11, H12], [H21, -H11.T]])
    eigvals = np.linalg.eigvals(H)
    return bool(np.any(np.abs(eigvals.real) < 1e-7 * max(1.0, np.max(np.abs(eigvals)))))


def hinf_norm(system: StateSpace, tol=1e-4, max_iter=80):
    """H-infinity norm of a stable system via bisection.

    Returns ``inf`` for unstable systems.  The bisection bracket is seeded by
    a gridded peak-gain lower bound; the eigenvalue test refines it.
    """
    if not system.is_stable():
        return np.inf
    if system.n_states == 0:
        if system.D.size == 0:
            return 0.0
        return float(np.linalg.svd(system.D, compute_uv=False)[0])
    lower = max(linf_norm_grid(system), 1e-12)
    upper = 2.0 * lower + 1.0
    # Grow the upper bracket until the gain test passes.
    for _ in range(60):
        if system.is_discrete:
            crosses = _has_unit_circle_eigs(
                system.A, system.B, system.C, system.D, upper, system.dt
            )
        else:
            crosses = _hamiltonian_has_imag_eigs(
                system.A, system.B, system.C, system.D, upper
            )
        if not crosses:
            break
        upper *= 2.0
    else:
        return float(lower)
    for _ in range(max_iter):
        if upper - lower <= tol * max(1.0, lower):
            break
        mid = 0.5 * (lower + upper)
        if system.is_discrete:
            crosses = _has_unit_circle_eigs(
                system.A, system.B, system.C, system.D, mid, system.dt
            )
        else:
            crosses = _hamiltonian_has_imag_eigs(
                system.A, system.B, system.C, system.D, mid
            )
        if crosses:
            lower = mid
        else:
            upper = mid
    return float(0.5 * (lower + upper))
