"""Bilinear (Tustin) transforms between discrete and continuous systems.

The robust synthesis pipeline identifies discrete-time models (that is what
sampled board data yields), maps them to the continuous w-plane, runs the
two-Riccati H-infinity machinery there, and maps the controller back.  The
bilinear map preserves the H-infinity norm exactly (it maps the unit circle
onto the imaginary axis), which is what makes this round trip legitimate.
"""

from __future__ import annotations

import numpy as np

from .statespace import StateSpace

__all__ = ["discrete_to_continuous", "continuous_to_discrete"]


def discrete_to_continuous(system: StateSpace) -> StateSpace:
    """Inverse Tustin map: z = (1 + s T/2) / (1 - s T/2).

    Requires ``-1`` not to be an eigenvalue of ``A`` (no pole at the Nyquist
    point); raises ``ValueError`` otherwise.
    """
    if not system.is_discrete:
        raise ValueError("system must be discrete")
    dt = system.dt
    n = system.n_states
    eye = np.eye(n)
    M = system.A + eye
    try:
        M_inv = np.linalg.inv(M)
    except np.linalg.LinAlgError as exc:
        raise ValueError("bilinear transform singular: pole at z = -1") from exc
    scale = 2.0 / dt
    Ac = scale * M_inv @ (system.A - eye)
    Bc = scale * M_inv @ system.B  # factor chosen so the inverse map is exact
    Cc = system.C @ M_inv * 2.0
    Dc = system.D - system.C @ M_inv @ system.B
    return StateSpace(Ac, Bc, Cc, Dc, dt=None)


def continuous_to_discrete(system: StateSpace, dt: float) -> StateSpace:
    """Tustin map: s = (2/T)(z - 1)/(z + 1), the exact inverse of the map above."""
    if system.is_discrete:
        raise ValueError("system must be continuous")
    # Delegate to the StateSpace Tustin discretization, whose realization
    # convention (Bd = (I - aA)^{-1} B dt) is what discrete_to_continuous
    # inverts; the round trip is exact up to floating point.
    return system.discretize(dt, method="tustin")
