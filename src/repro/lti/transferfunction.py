"""SISO transfer functions and conversion to state space.

The sysid layer fits polynomial (Box-Jenkins style) models whose natural
representation is a ratio of polynomials in the delay operator ``q^-1``.
This module provides that representation plus controllable-canonical-form
realization, so identified models can flow into the state-space machinery.
"""

from __future__ import annotations

import numpy as np

from .statespace import StateSpace

__all__ = ["TransferFunction", "tf", "tf_to_ss", "first_order_lag"]


def _trim_leading_zeros(coeffs):
    coeffs = np.atleast_1d(np.asarray(coeffs, dtype=float))
    nonzero = np.nonzero(coeffs)[0]
    if nonzero.size == 0:
        return np.array([0.0])
    return coeffs[nonzero[0] :]


class TransferFunction:
    """A SISO rational transfer function ``num(s)/den(s)``.

    Coefficients are in descending powers, numpy-polynomial style.  ``dt``
    follows the :class:`~repro.lti.statespace.StateSpace` convention.
    """

    def __init__(self, num, den, dt=None):
        self.num = _trim_leading_zeros(num)
        self.den = _trim_leading_zeros(den)
        if np.allclose(self.den, 0.0):
            raise ValueError("denominator must be nonzero")
        if len(self.num) > len(self.den):
            raise ValueError("transfer function must be proper (deg num <= deg den)")
        # Normalize so the leading denominator coefficient is 1.
        lead = self.den[0]
        self.num = self.num / lead
        self.den = self.den / lead
        self.dt = dt

    @property
    def is_discrete(self):
        return self.dt is not None

    def order(self):
        return len(self.den) - 1

    def __call__(self, s):
        """Evaluate at a complex point ``s`` (or ``z`` if discrete)."""
        return np.polyval(self.num, s) / np.polyval(self.den, s)

    def at_frequency(self, omega):
        if self.is_discrete:
            return self(np.exp(1j * omega * self.dt))
        return self(1j * omega)

    def poles(self):
        return np.roots(self.den)

    def zeros(self):
        return np.roots(self.num)

    def is_stable(self, tol=1e-9):
        poles = self.poles()
        if poles.size == 0:
            return True
        if self.is_discrete:
            return bool(np.max(np.abs(poles)) < 1.0 - tol)
        return bool(np.max(poles.real) < -tol)

    def __mul__(self, other):
        if np.isscalar(other):
            return TransferFunction(self.num * other, self.den, dt=self.dt)
        if self.dt != other.dt:
            raise ValueError("cannot multiply systems with different dt")
        return TransferFunction(
            np.polymul(self.num, other.num), np.polymul(self.den, other.den), dt=self.dt
        )

    __rmul__ = __mul__

    def __add__(self, other):
        if np.isscalar(other):
            other = TransferFunction([float(other)], [1.0], dt=self.dt)
        if self.dt != other.dt:
            raise ValueError("cannot add systems with different dt")
        num = np.polyadd(
            np.polymul(self.num, other.den), np.polymul(other.num, self.den)
        )
        den = np.polymul(self.den, other.den)
        return TransferFunction(num, den, dt=self.dt)

    def to_ss(self):
        return tf_to_ss(self)

    def __repr__(self):
        kind = f"dt={self.dt}" if self.is_discrete else "continuous"
        return f"TransferFunction(num={self.num}, den={self.den}, {kind})"


def tf(num, den, dt=None):
    """Convenience constructor for :class:`TransferFunction`."""
    return TransferFunction(num, den, dt=dt)


def tf_to_ss(sys_tf):
    """Controllable canonical realization of a proper SISO transfer function."""
    den = sys_tf.den
    n = len(den) - 1
    num = np.concatenate([np.zeros(n + 1 - len(sys_tf.num)), sys_tf.num])
    d = num[0]
    # Strictly proper part: num_sp = num - d * den.
    num_sp = (num - d * den)[1:]
    if n == 0:
        return StateSpace(
            np.zeros((0, 0)), np.zeros((0, 1)), np.zeros((1, 0)), [[d]], dt=sys_tf.dt
        )
    A = np.zeros((n, n))
    A[0, :] = -den[1:]
    A[1:, :-1] = np.eye(n - 1)
    B = np.zeros((n, 1))
    B[0, 0] = 1.0
    C = num_sp.reshape(1, n)
    D = np.array([[d]])
    return StateSpace(A, B, C, D, dt=sys_tf.dt)


def first_order_lag(gain, pole, dt):
    """Discrete first-order lag ``gain * (1 - pole) / (z - pole)``.

    Has unit DC gain scaled by ``gain`` and is strictly proper, which is the
    shape the generalized-plant builder wants for performance weights (a
    strictly proper weight keeps the augmented plant's D11 block zero).
    """
    if not 0.0 <= pole < 1.0:
        raise ValueError(f"pole must be in [0, 1), got {pole}")
    return TransferFunction([gain * (1.0 - pole)], [1.0, -pole], dt=dt).to_ss()
