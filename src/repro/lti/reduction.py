"""Balanced truncation model reduction.

Synthesized SSV controllers inherit the order of the augmented plant plus
D-scales; the paper's hardware implementation (Sec. VI-D) uses a dimension-20
state machine.  Balanced truncation lets us reduce synthesized controllers to
a fixed order while keeping an error bound (twice the sum of the discarded
Hankel singular values).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cholesky, svd

from .lyapunov import controllability_gramian, observability_gramian
from .statespace import StateSpace

__all__ = ["hankel_singular_values", "balanced_truncation", "stable_unstable_split"]


def hankel_singular_values(system: StateSpace):
    """Hankel singular values of a stable system."""
    Wc = controllability_gramian(system)
    Wo = observability_gramian(system)
    if Wc.size == 0:
        return np.array([])
    eigvals = np.linalg.eigvals(Wc @ Wo)
    eigvals = np.clip(eigvals.real, 0.0, None)
    return np.sqrt(np.sort(eigvals)[::-1])


def _safe_cholesky(P):
    """Cholesky factor of a (numerically) PSD matrix, with jitter fallback."""
    P = 0.5 * (P + P.T)
    jitter = 0.0
    scale = max(np.trace(P) / max(P.shape[0], 1), 1e-30)
    for _ in range(12):
        try:
            return cholesky(P + jitter * np.eye(P.shape[0]), lower=True)
        except np.linalg.LinAlgError:
            jitter = max(jitter * 10.0, 1e-14 * scale)
    raise np.linalg.LinAlgError("gramian is too indefinite for Cholesky")


def balanced_truncation(system: StateSpace, order):
    """Reduce a *stable* system to ``order`` states via balanced truncation.

    Returns ``(reduced_system, error_bound)`` where the bound is the
    classical twice-the-tail Hankel bound on the H-infinity error.
    """
    n = system.n_states
    if order >= n:
        return system, 0.0
    if not system.is_stable():
        raise ValueError("balanced truncation requires a stable system")
    Wc = controllability_gramian(system)
    Wo = observability_gramian(system)
    Lc = _safe_cholesky(Wc)
    Lo = _safe_cholesky(Wo)
    U, sigma, Vt = svd(Lo.T @ Lc)
    sigma = np.clip(sigma, 1e-300, None)
    # Balancing transformation (square-root method).
    sig_half_inv = np.diag(sigma ** -0.5)
    T_inv = Lc @ Vt.T @ sig_half_inv  # maps balanced -> original
    T = sig_half_inv @ U.T @ Lo.T  # maps original -> balanced
    A_bal = T @ system.A @ T_inv
    B_bal = T @ system.B
    C_bal = system.C @ T_inv
    keep = slice(0, order)
    reduced = StateSpace(
        A_bal[keep, keep], B_bal[keep, :], C_bal[:, keep], system.D, dt=system.dt
    )
    error_bound = float(2.0 * np.sum(sigma[order:]))
    return reduced, error_bound


def stable_unstable_split(system: StateSpace, tol=1e-9):
    """Additively split a discrete system into stable + antistable parts.

    Uses an ordered real Schur decomposition; the returned pair satisfies
    ``system = stable + unstable`` (as transfer functions) with the
    feed-through assigned to the stable part.
    """
    from scipy.linalg import schur

    if system.n_states == 0:
        return system, None
    discrete = system.is_discrete

    def select(eig_real, eig_imag=None):
        if eig_imag is None:  # complex Schur callback signature
            vals = eig_real
        else:
            vals = eig_real + 1j * eig_imag
        if discrete:
            return np.abs(vals) < 1.0 - tol
        return np.real(vals) < -tol

    T, Z, n_stable = schur(system.A, output="real", sort=select)
    n = system.n_states
    if n_stable == n:
        return system, None
    if n_stable == 0:
        zero = StateSpace(
            np.zeros((0, 0)),
            np.zeros((0, system.n_inputs)),
            np.zeros((system.n_outputs, 0)),
            system.D,
            dt=system.dt,
        )
        return zero, StateSpace(system.A, system.B, system.C, None, dt=system.dt)
    # Block-diagonalize by solving a Sylvester equation for the coupling.
    from scipy.linalg import solve_sylvester

    A11 = T[:n_stable, :n_stable]
    A12 = T[:n_stable, n_stable:]
    A22 = T[n_stable:, n_stable:]
    X = solve_sylvester(A11, -A22, -A12)
    B_rot = Z.T @ system.B
    C_rot = system.C @ Z
    B1 = B_rot[:n_stable, :] + X @ B_rot[n_stable:, :]
    B2 = B_rot[n_stable:, :]
    C1 = C_rot[:, :n_stable]
    C2 = C_rot[:, n_stable:] - C1 @ X
    stable = StateSpace(A11, B1, C1, system.D, dt=system.dt)
    unstable = StateSpace(A22, B2, C2, None, dt=system.dt)
    return stable, unstable
