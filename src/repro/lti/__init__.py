"""Linear time-invariant systems substrate.

Everything the robust-control stack needs: state-space and transfer-function
representations, interconnections and LFTs, Lyapunov machinery, system norms,
bilinear transforms, and balanced-truncation model reduction.
"""

from .bilinear import continuous_to_discrete, discrete_to_continuous
from .lft import (
    PartitionedSystem,
    lft_lower,
    lft_upper,
    matrix_lft_lower,
    matrix_lft_upper,
)
from .lyapunov import (
    controllability_gramian,
    controllability_matrix,
    is_controllable,
    is_observable,
    lyapunov_solve,
    observability_gramian,
    observability_matrix,
)
from .norms import frequency_grid, h2_norm, hinf_norm, linf_norm_grid, singular_value_plot
from .reduction import balanced_truncation, hankel_singular_values, stable_unstable_split
from .response import StepInfo, impulse_response, step_info, step_response
from .statespace import StateSpace, append, feedback, parallel, series, ss, static_gain
from .transferfunction import TransferFunction, first_order_lag, tf, tf_to_ss

__all__ = [
    "StateSpace",
    "ss",
    "static_gain",
    "series",
    "parallel",
    "feedback",
    "append",
    "TransferFunction",
    "tf",
    "tf_to_ss",
    "first_order_lag",
    "PartitionedSystem",
    "lft_lower",
    "lft_upper",
    "matrix_lft_lower",
    "matrix_lft_upper",
    "lyapunov_solve",
    "controllability_gramian",
    "observability_gramian",
    "controllability_matrix",
    "observability_matrix",
    "is_controllable",
    "is_observable",
    "h2_norm",
    "hinf_norm",
    "linf_norm_grid",
    "frequency_grid",
    "singular_value_plot",
    "discrete_to_continuous",
    "continuous_to_discrete",
    "balanced_truncation",
    "hankel_singular_values",
    "stable_unstable_split",
    "StepInfo",
    "step_response",
    "impulse_response",
    "step_info",
]
