"""Lyapunov equations and gramians for LTI systems.

These underpin the H2 norm, balanced truncation, and several sanity checks
used throughout the robust-control stack.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_discrete_lyapunov, solve_lyapunov

from .statespace import StateSpace

__all__ = [
    "lyapunov_solve",
    "controllability_gramian",
    "observability_gramian",
    "controllability_matrix",
    "observability_matrix",
    "is_controllable",
    "is_observable",
]


def lyapunov_solve(A, Q, discrete):
    """Solve ``A X A' - X + Q = 0`` (discrete) or ``A X + X A' + Q = 0``."""
    A = np.asarray(A, dtype=float)
    Q = np.asarray(Q, dtype=float)
    if discrete:
        return solve_discrete_lyapunov(A, Q)
    return solve_lyapunov(A, -Q)


def controllability_gramian(system: StateSpace):
    """Controllability gramian of a stable system."""
    if not system.is_stable():
        raise ValueError("gramians are only defined for stable systems")
    if system.n_states == 0:
        return np.zeros((0, 0))
    return lyapunov_solve(system.A, system.B @ system.B.T, system.is_discrete)


def observability_gramian(system: StateSpace):
    """Observability gramian of a stable system."""
    if not system.is_stable():
        raise ValueError("gramians are only defined for stable systems")
    if system.n_states == 0:
        return np.zeros((0, 0))
    return lyapunov_solve(system.A.T, system.C.T @ system.C, system.is_discrete)


def controllability_matrix(system: StateSpace):
    """Kalman controllability matrix ``[B, AB, ..., A^{n-1}B]``."""
    n = system.n_states
    blocks = []
    block = system.B
    for _ in range(max(n, 1)):
        blocks.append(block)
        block = system.A @ block
    return np.hstack(blocks) if blocks else np.zeros((n, 0))


def observability_matrix(system: StateSpace):
    """Kalman observability matrix ``[C; CA; ...; CA^{n-1}]``."""
    n = system.n_states
    blocks = []
    block = system.C
    for _ in range(max(n, 1)):
        blocks.append(block)
        block = block @ system.A
    return np.vstack(blocks) if blocks else np.zeros((0, n))


def is_controllable(system: StateSpace, tol=None):
    n = system.n_states
    if n == 0:
        return True
    rank = np.linalg.matrix_rank(controllability_matrix(system), tol=tol)
    return bool(rank == n)


def is_observable(system: StateSpace, tol=None):
    n = system.n_states
    if n == 0:
        return True
    rank = np.linalg.matrix_rank(observability_matrix(system), tol=tol)
    return bool(rank == n)
