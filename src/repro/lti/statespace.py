"""Linear time-invariant state-space systems.

This module is the numerical foundation of the repository.  It provides a
:class:`StateSpace` type for both continuous-time and discrete-time systems,
plus the interconnections (series, parallel, feedback, linear fractional
transformations) that robust-control synthesis is built from.

The conventions follow Skogestad & Postlethwaite, *Multivariable Feedback
Control*:

* continuous time:  ``dx/dt = A x + B u``,  ``y = C x + D u``
* discrete time:    ``x[k+1] = A x[k] + B u[k]``,  ``y[k] = C x[k] + D u[k]``

A discrete system carries its sampling period ``dt``; continuous systems have
``dt is None``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "StateSpace",
    "ss",
    "series",
    "parallel",
    "feedback",
    "append",
    "static_gain",
]


def _as_2d(matrix, rows=None, cols=None, name="matrix"):
    """Coerce ``matrix`` to a float 2-D array, validating its shape."""
    arr = np.atleast_2d(np.asarray(matrix, dtype=float))
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if rows is not None and arr.shape[0] != rows:
        raise ValueError(f"{name} must have {rows} rows, got {arr.shape[0]}")
    if cols is not None and arr.shape[1] != cols:
        raise ValueError(f"{name} must have {cols} columns, got {arr.shape[1]}")
    return arr


class StateSpace:
    """A (possibly MIMO) linear time-invariant system in state-space form.

    Parameters
    ----------
    A, B, C, D:
        System matrices.  ``D`` may be given as ``None`` for a zero
        feed-through of the appropriate shape.
    dt:
        ``None`` for a continuous-time system, or a positive sampling
        period in seconds for a discrete-time system.
    """

    def __init__(self, A, B, C, D=None, dt=None):
        A = _as_2d(A, name="A")
        if A.shape[0] != A.shape[1]:
            raise ValueError(f"A must be square, got shape {A.shape}")
        n = A.shape[0]
        B = _as_2d(B, rows=n, name="B") if n else np.zeros((0, np.atleast_2d(B).shape[1]))
        C = _as_2d(C, cols=n, name="C") if n else np.zeros((np.atleast_2d(C).shape[0], 0))
        m = B.shape[1]
        p = C.shape[0]
        if D is None:
            D = np.zeros((p, m))
        D = _as_2d(D, rows=p, cols=m, name="D")
        if dt is not None and dt <= 0:
            raise ValueError(f"dt must be positive or None, got {dt}")
        self.A = A
        self.B = B
        self.C = C
        self.D = D
        self.dt = dt

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_states(self):
        return self.A.shape[0]

    @property
    def n_inputs(self):
        return self.B.shape[1]

    @property
    def n_outputs(self):
        return self.C.shape[0]

    @property
    def is_discrete(self):
        return self.dt is not None

    def poles(self):
        """Eigenvalues of ``A``."""
        if self.n_states == 0:
            return np.array([])
        return np.linalg.eigvals(self.A)

    def is_stable(self, tol=1e-9):
        """Whether the system is internally (asymptotically) stable."""
        if self.n_states == 0:
            return True
        poles = self.poles()
        if self.is_discrete:
            return bool(np.max(np.abs(poles)) < 1.0 - tol)
        return bool(np.max(poles.real) < -tol)

    def spectral_radius(self):
        """Spectral radius of ``A`` (useful for discrete stability margins)."""
        if self.n_states == 0:
            return 0.0
        return float(np.max(np.abs(self.poles())))

    # ------------------------------------------------------------------
    # Evaluation and simulation
    # ------------------------------------------------------------------
    def frequency_response(self, s):
        """Evaluate the transfer matrix at one complex frequency point.

        For discrete systems pass ``z`` (a point on or near the unit circle);
        for continuous systems pass ``s`` (a point on the imaginary axis).
        """
        n = self.n_states
        if n == 0:
            return self.D.astype(complex)
        resolvent = np.linalg.solve(s * np.eye(n) - self.A, self.B)
        return self.C @ resolvent + self.D

    def at_frequency(self, omega):
        """Transfer matrix at angular frequency ``omega`` (rad/s)."""
        if self.is_discrete:
            return self.frequency_response(np.exp(1j * omega * self.dt))
        return self.frequency_response(1j * omega)

    def dc_gain(self):
        """Steady-state gain matrix (z=1 for discrete, s=0 for continuous)."""
        point = 1.0 if self.is_discrete else 0.0
        return self.frequency_response(point + 0j).real

    def step(self, x, u):
        """Advance a discrete system one step: returns ``(x_next, y)``."""
        if not self.is_discrete:
            raise ValueError("step() is only defined for discrete-time systems")
        x = np.asarray(x, dtype=float).reshape(self.n_states)
        u = np.asarray(u, dtype=float).reshape(self.n_inputs)
        y = self.C @ x + self.D @ u
        x_next = self.A @ x + self.B @ u
        return x_next, y

    def simulate(self, u_sequence, x0=None):
        """Simulate a discrete system over an input sequence.

        Parameters
        ----------
        u_sequence:
            Array of shape ``(T, n_inputs)``.
        x0:
            Initial state (defaults to zero).

        Returns
        -------
        ``(x_trajectory, y_trajectory)`` with shapes ``(T+1, n)``/``(T, p)``.
        """
        if not self.is_discrete:
            raise ValueError("simulate() is only defined for discrete systems")
        u_sequence = np.atleast_2d(np.asarray(u_sequence, dtype=float))
        if u_sequence.shape[1] != self.n_inputs:
            raise ValueError(
                f"input sequence has {u_sequence.shape[1]} channels, "
                f"system expects {self.n_inputs}"
            )
        steps = u_sequence.shape[0]
        x = np.zeros(self.n_states) if x0 is None else np.asarray(x0, float).copy()
        xs = np.zeros((steps + 1, self.n_states))
        ys = np.zeros((steps, self.n_outputs))
        xs[0] = x
        for k in range(steps):
            x, y = self.step(x, u_sequence[k])
            xs[k + 1] = x
            ys[k] = y
        return xs, ys

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def discretize(self, dt, method="zoh"):
        """Discretize a continuous system (zero-order hold or Tustin)."""
        if self.is_discrete:
            raise ValueError("system is already discrete")
        n = self.n_states
        if method == "zoh":
            from scipy.linalg import expm

            # Van Loan block-matrix exponential for exact ZOH.
            block = np.zeros((n + self.n_inputs, n + self.n_inputs))
            block[:n, :n] = self.A * dt
            block[:n, n:] = self.B * dt
            exp_block = expm(block)
            Ad = exp_block[:n, :n]
            Bd = exp_block[:n, n:]
            return StateSpace(Ad, Bd, self.C, self.D, dt=dt)
        if method == "tustin":
            eye = np.eye(n)
            alpha = dt / 2.0
            inv = np.linalg.inv(eye - alpha * self.A)
            Ad = inv @ (eye + alpha * self.A)
            Bd = inv @ self.B * dt
            Cd = self.C @ inv
            Dd = self.D + alpha * self.C @ inv @ self.B
            return StateSpace(Ad, Bd, Cd, Dd, dt=dt)
        raise ValueError(f"unknown discretization method {method!r}")

    def transpose(self):
        """Dual system (A', C', B', D')."""
        return StateSpace(self.A.T, self.C.T, self.B.T, self.D.T, dt=self.dt)

    def subsystem(self, outputs=None, inputs=None):
        """Select a subset of input/output channels (state is shared)."""
        out_idx = np.arange(self.n_outputs) if outputs is None else np.asarray(outputs)
        in_idx = np.arange(self.n_inputs) if inputs is None else np.asarray(inputs)
        return StateSpace(
            self.A,
            self.B[:, in_idx],
            self.C[out_idx, :],
            self.D[np.ix_(out_idx, in_idx)],
            dt=self.dt,
        )

    def similarity_transform(self, T):
        """Change of state coordinates ``x_new = T x``."""
        T = _as_2d(T, rows=self.n_states, cols=self.n_states, name="T")
        T_inv = np.linalg.inv(T)
        return StateSpace(
            T @ self.A @ T_inv, T @ self.B, self.C @ T_inv, self.D, dt=self.dt
        )

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other):
        if self.dt != other.dt:
            raise ValueError(
                f"cannot combine systems with different dt ({self.dt} vs {other.dt})"
            )

    def __neg__(self):
        return StateSpace(self.A, self.B, -self.C, -self.D, dt=self.dt)

    def __add__(self, other):
        other = _coerce_system(other, like=self)
        self._check_compatible(other)
        if (self.n_inputs, self.n_outputs) != (other.n_inputs, other.n_outputs):
            raise ValueError("parallel connection requires matching dimensions")
        n1, n2 = self.n_states, other.n_states
        A = np.block(
            [
                [self.A, np.zeros((n1, n2))],
                [np.zeros((n2, n1)), other.A],
            ]
        )
        B = np.vstack([self.B, other.B])
        C = np.hstack([self.C, other.C])
        D = self.D + other.D
        return StateSpace(A, B, C, D, dt=self.dt)

    def __sub__(self, other):
        other = _coerce_system(other, like=self)
        return self + (-other)

    def __mul__(self, other):
        """Series connection ``self * other``: output of ``other`` feeds self."""
        other = _coerce_system(other, like=self)
        self._check_compatible(other)
        if self.n_inputs != other.n_outputs:
            raise ValueError(
                f"series connection mismatch: {self.n_inputs} inputs vs "
                f"{other.n_outputs} outputs"
            )
        n1, n2 = self.n_states, other.n_states
        A = np.block(
            [
                [self.A, self.B @ other.C],
                [np.zeros((n2, n1)), other.A],
            ]
        )
        B = np.vstack([self.B @ other.D, other.B])
        C = np.hstack([self.C, self.D @ other.C])
        D = self.D @ other.D
        return StateSpace(A, B, C, D, dt=self.dt)

    def __rmul__(self, other):
        other = _coerce_system(other, like=self)
        return other * self

    def __repr__(self):
        kind = f"dt={self.dt}" if self.is_discrete else "continuous"
        return (
            f"StateSpace(n={self.n_states}, inputs={self.n_inputs}, "
            f"outputs={self.n_outputs}, {kind})"
        )


def _coerce_system(value, like):
    """Turn scalars / matrices into static-gain systems matching ``like``."""
    if isinstance(value, StateSpace):
        return value
    gain = np.atleast_2d(np.asarray(value, dtype=float))
    if gain.shape == (1, 1):
        gain = gain[0, 0] * np.eye(like.n_outputs)
    return static_gain(gain, dt=like.dt)


def ss(A, B, C, D=None, dt=None):
    """Convenience constructor for :class:`StateSpace`."""
    return StateSpace(A, B, C, D, dt=dt)


def static_gain(gain, dt=None):
    """A memoryless system ``y = G u``."""
    gain = np.atleast_2d(np.asarray(gain, dtype=float))
    p, m = gain.shape
    return StateSpace(np.zeros((0, 0)), np.zeros((0, m)), np.zeros((p, 0)), gain, dt=dt)


def series(*systems):
    """Chain systems so the signal flows left to right: ``u -> s1 -> s2 ...``"""
    if not systems:
        raise ValueError("series() needs at least one system")
    result = systems[0]
    for sys_k in systems[1:]:
        result = sys_k * result
    return result


def parallel(*systems):
    """Sum of systems sharing the same input."""
    if not systems:
        raise ValueError("parallel() needs at least one system")
    result = systems[0]
    for sys_k in systems[1:]:
        result = result + sys_k
    return result


def feedback(forward, backward=None, sign=-1):
    """Close a loop around ``forward`` with ``backward`` in the return path.

    Computes ``forward (I - sign * backward * forward)^{-1}`` in transfer
    terms; ``sign=-1`` (default) gives classical negative feedback.
    """
    if backward is None:
        backward = static_gain(np.eye(forward.n_outputs), dt=forward.dt)
    backward = _coerce_system(backward, like=forward)
    forward._check_compatible(backward)
    if forward.n_outputs != backward.n_inputs or backward.n_outputs != forward.n_inputs:
        raise ValueError("feedback dimensions are inconsistent")
    D1, D2 = forward.D, backward.D
    loop_gain = np.eye(forward.n_inputs) - sign * D2 @ D1
    try:
        loop_inv = np.linalg.inv(loop_gain)
    except np.linalg.LinAlgError as exc:
        raise ValueError("algebraic loop: I - sign*D2*D1 is singular") from exc
    n1, n2 = forward.n_states, backward.n_states
    A1, B1, C1 = forward.A, forward.B, forward.C
    A2, B2, C2 = backward.A, backward.B, backward.C
    s = sign
    A = np.block(
        [
            [A1 + s * B1 @ loop_inv @ D2 @ C1, s * B1 @ loop_inv @ C2],
            [B2 @ (C1 + s * D1 @ loop_inv @ D2 @ C1), A2 + s * B2 @ D1 @ loop_inv @ C2],
        ]
    )
    B = np.vstack([B1 @ loop_inv, B2 @ D1 @ loop_inv])
    C = np.hstack([C1 + s * D1 @ loop_inv @ D2 @ C1, s * D1 @ loop_inv @ C2])
    D = D1 @ loop_inv
    return StateSpace(A, B, C, D, dt=forward.dt)


def append(*systems):
    """Block-diagonal concatenation: inputs and outputs are stacked."""
    if not systems:
        raise ValueError("append() needs at least one system")
    dt = systems[0].dt
    for sys_k in systems:
        if sys_k.dt != dt:
            raise ValueError("all systems must share the same dt")
    n = sum(s.n_states for s in systems)
    m = sum(s.n_inputs for s in systems)
    p = sum(s.n_outputs for s in systems)
    A = np.zeros((n, n))
    B = np.zeros((n, m))
    C = np.zeros((p, n))
    D = np.zeros((p, m))
    i = j = k = 0
    for sys_k in systems:
        ni, mi, pi = sys_k.n_states, sys_k.n_inputs, sys_k.n_outputs
        A[i : i + ni, i : i + ni] = sys_k.A
        B[i : i + ni, j : j + mi] = sys_k.B
        C[k : k + pi, i : i + ni] = sys_k.C
        D[k : k + pi, j : j + mi] = sys_k.D
        i += ni
        j += mi
        k += pi
    return StateSpace(A, B, C, D, dt=dt)
