"""Linear fractional transformations (LFTs) on partitioned systems.

Robust control lives and dies by the lower LFT ``F_l(P, K)`` (closing the
controller around the generalized plant) and the upper LFT ``F_u(N, Delta)``
(closing the uncertainty around the nominal loop).  Both are provided here
for :class:`~repro.lti.statespace.StateSpace` systems and for constant
complex matrices (used per-frequency in the mu computation).
"""

from __future__ import annotations

import numpy as np

from .statespace import StateSpace

__all__ = ["PartitionedSystem", "lft_lower", "lft_upper", "matrix_lft_lower", "matrix_lft_upper"]


class PartitionedSystem:
    """A state-space system with a 2x2 input/output channel partition.

    The first ``n_w`` inputs / ``n_z`` outputs form the (exogenous)
    performance channel; the remainder form the (control or uncertainty)
    channel depending on which LFT is taken.
    """

    def __init__(self, system: StateSpace, n_w: int, n_z: int):
        if not 0 <= n_w <= system.n_inputs:
            raise ValueError(f"n_w={n_w} out of range for {system.n_inputs} inputs")
        if not 0 <= n_z <= system.n_outputs:
            raise ValueError(f"n_z={n_z} out of range for {system.n_outputs} outputs")
        self.system = system
        self.n_w = n_w
        self.n_z = n_z

    @property
    def n_u(self):
        return self.system.n_inputs - self.n_w

    @property
    def n_y(self):
        return self.system.n_outputs - self.n_z

    def blocks(self):
        """Return (A, B1, B2, C1, C2, D11, D12, D21, D22)."""
        sys_ = self.system
        B1 = sys_.B[:, : self.n_w]
        B2 = sys_.B[:, self.n_w :]
        C1 = sys_.C[: self.n_z, :]
        C2 = sys_.C[self.n_z :, :]
        D11 = sys_.D[: self.n_z, : self.n_w]
        D12 = sys_.D[: self.n_z, self.n_w :]
        D21 = sys_.D[self.n_z :, : self.n_w]
        D22 = sys_.D[self.n_z :, self.n_w :]
        return sys_.A, B1, B2, C1, C2, D11, D12, D21, D22


def lft_lower(plant: PartitionedSystem, controller: StateSpace) -> StateSpace:
    """Close ``controller`` around the *lower* channel of ``plant``.

    The controller reads the plant's lower outputs (measurements) and drives
    its lower inputs (controls); the result maps w -> z.
    """
    if controller.dt != plant.system.dt:
        raise ValueError("plant and controller must share dt")
    A, B1, B2, C1, C2, D11, D12, D21, D22 = plant.blocks()
    Ak, Bk, Ck, Dk = controller.A, controller.B, controller.C, controller.D
    if controller.n_inputs != plant.n_y or controller.n_outputs != plant.n_u:
        raise ValueError(
            f"controller is {controller.n_inputs}x{controller.n_outputs}, plant "
            f"lower channel expects {plant.n_y} measurements / {plant.n_u} controls"
        )
    m = np.eye(Dk.shape[0]) - Dk @ D22
    try:
        m_inv = np.linalg.inv(m)
    except np.linalg.LinAlgError as exc:
        raise ValueError("algebraic loop in lower LFT (I - Dk D22 singular)") from exc
    n = np.eye(D22.shape[0]) - D22 @ Dk
    n_inv = np.linalg.inv(n)
    A_cl = np.block(
        [
            [A + B2 @ m_inv @ Dk @ C2, B2 @ m_inv @ Ck],
            [Bk @ n_inv @ C2, Ak + Bk @ n_inv @ D22 @ Ck],
        ]
    )
    B_cl = np.vstack([B1 + B2 @ m_inv @ Dk @ D21, Bk @ n_inv @ D21])
    C_cl = np.hstack([C1 + D12 @ m_inv @ Dk @ C2, D12 @ m_inv @ Ck])
    D_cl = D11 + D12 @ m_inv @ Dk @ D21
    return StateSpace(A_cl, B_cl, C_cl, D_cl, dt=plant.system.dt)


def lft_upper(plant: PartitionedSystem, delta: StateSpace) -> StateSpace:
    """Close ``delta`` around the *upper* channel of ``plant``.

    Here the partition is read as [perturbation channel; performance
    channel]: the first n_w inputs / n_z outputs are the perturbation ports.
    """
    # Reuse lft_lower by flipping the partition ordering.
    sys_ = plant.system
    n_d, n_f = plant.n_w, plant.n_z
    perm_in = np.concatenate([np.arange(n_d, sys_.n_inputs), np.arange(n_d)])
    perm_out = np.concatenate([np.arange(n_f, sys_.n_outputs), np.arange(n_f)])
    flipped = StateSpace(
        sys_.A,
        sys_.B[:, perm_in],
        sys_.C[perm_out, :],
        sys_.D[np.ix_(perm_out, perm_in)],
        dt=sys_.dt,
    )
    flipped_part = PartitionedSystem(
        flipped, n_w=sys_.n_inputs - n_d, n_z=sys_.n_outputs - n_f
    )
    return lft_lower(flipped_part, delta)


def matrix_lft_lower(M, K, n_w, n_z):
    """Constant-matrix lower LFT: ``F_l(M, K)`` with the same partition rules."""
    M = np.asarray(M)
    M11 = M[:n_z, :n_w]
    M12 = M[:n_z, n_w:]
    M21 = M[n_z:, :n_w]
    M22 = M[n_z:, n_w:]
    # F_l = M11 + M12 K (I - M22 K)^{-1} M21 = M11 + M12 (I - K M22)^{-1} K M21.
    inner = np.eye(K.shape[0]) - K @ M22
    return M11 + M12 @ np.linalg.solve(inner, K @ M21)


def matrix_lft_upper(M, Delta, n_d, n_f):
    """Constant-matrix upper LFT: ``F_u(M, Delta)``."""
    M = np.asarray(M)
    M11 = M[:n_f, :n_d]
    M12 = M[:n_f, n_d:]
    M21 = M[n_f:, :n_d]
    M22 = M[n_f:, n_d:]
    # F_u = M22 + M21 Delta (I - M11 Delta)^{-1} M12
    #     = M22 + M21 (I - Delta M11)^{-1} Delta M12.
    inner = np.eye(Delta.shape[0]) - Delta @ M11
    return M22 + M21 @ np.linalg.solve(inner, Delta @ M12)
