"""Time-domain response helpers: step, impulse, settling metrics.

Used by the analysis figures and handy for users exploring synthesized
controllers ("how fast does the loop settle?") without writing simulation
boilerplate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .statespace import StateSpace

__all__ = ["step_response", "impulse_response", "step_info", "StepInfo"]


def _ensure_discrete(system: StateSpace, dt=None):
    if system.is_discrete:
        return system
    if dt is None:
        # Pick a step well inside the fastest time constant.
        poles = system.poles()
        fastest = np.max(np.abs(poles.real)) if poles.size else 1.0
        dt = 0.1 / max(fastest, 1e-3)
    return system.discretize(dt)


def step_response(system: StateSpace, steps=None, input_channel=0, dt=None):
    """Unit-step response: returns ``(times, outputs)`` with outputs (T, p)."""
    disc = _ensure_discrete(system, dt)
    if steps is None:
        steps = _default_horizon(disc)
    u = np.zeros((steps, disc.n_inputs))
    u[:, input_channel] = 1.0
    _, ys = disc.simulate(u)
    times = np.arange(steps) * disc.dt
    return times, ys


def impulse_response(system: StateSpace, steps=None, input_channel=0, dt=None):
    """Unit-impulse response (discrete impulse of height 1/dt)."""
    disc = _ensure_discrete(system, dt)
    if steps is None:
        steps = _default_horizon(disc)
    u = np.zeros((steps, disc.n_inputs))
    u[0, input_channel] = 1.0 / disc.dt
    _, ys = disc.simulate(u)
    times = np.arange(steps) * disc.dt
    return times, ys


def _default_horizon(disc: StateSpace):
    radius = disc.spectral_radius()
    if radius <= 0 or radius >= 1:
        return 200
    # Steps for transients to decay to ~0.2%.
    return int(min(max(np.log(0.002) / np.log(radius), 30), 5000))


@dataclass
class StepInfo:
    """Classical step-response metrics for one output channel."""

    final_value: float
    rise_time: float  # 10% -> 90% of the final value
    settling_time: float  # last exit from the +-2% band
    overshoot_percent: float

    def summary(self):
        return (
            f"final={self.final_value:.4g}, rise={self.rise_time:.4g}s, "
            f"settle={self.settling_time:.4g}s, "
            f"overshoot={self.overshoot_percent:.1f}%"
        )


def step_info(system: StateSpace, input_channel=0, output_channel=0,
              settle_band=0.02, dt=None):
    """Rise/settling/overshoot metrics of one SISO channel's step response."""
    if not system.is_stable():
        raise ValueError("step_info requires a stable system")
    times, ys = step_response(system, input_channel=input_channel, dt=dt)
    y = ys[:, output_channel]
    final = float(system.dc_gain()[output_channel, input_channel])
    if abs(final) < 1e-12:
        return StepInfo(final, float("nan"), float("nan"), float("nan"))
    normalized = y / final
    # Rise time 10% -> 90%.
    above10 = np.nonzero(normalized >= 0.1)[0]
    above90 = np.nonzero(normalized >= 0.9)[0]
    rise = (
        float(times[above90[0]] - times[above10[0]])
        if above10.size and above90.size
        else float("nan")
    )
    # Settling: last time outside the band.
    outside = np.nonzero(np.abs(normalized - 1.0) > settle_band)[0]
    settle = float(times[outside[-1] + 1]) if outside.size and outside[-1] + 1 < len(times) else 0.0
    overshoot = float(max(normalized.max() - 1.0, 0.0) * 100.0)
    return StepInfo(final, rise, settle, overshoot)
