"""Discrete LQG synthesis (the Sec. VI-B comparison baseline)."""

from .synthesis import LQGResult, lqg_synthesize

__all__ = ["LQGResult", "lqg_synthesize"]
