"""Discrete-time LQG controller synthesis.

This reproduces the state-of-the-art MIMO LQG baseline the paper compares
against (Pothukuchi et al., ISCA 2016): an LQR state feedback on output
tracking errors combined with a Kalman filter, with integral action so
constant targets are met.  Unlike the SSV design it accepts only input and
output *weights* — no deviation bounds, no saturation/quantization
description, no external-signal channels, and no uncertainty guardband;
those limitations are exactly what Figs. 12-13 quantify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_discrete_are

from ..lti import StateSpace

__all__ = ["LQGResult", "lqg_synthesize"]


@dataclass
class LQGResult:
    """A synthesized LQG tracking controller.

    The runtime form matches the paper's Eq. 3-4 state machine: the
    controller state is the Kalman estimate plus the error integrator, the
    input is the vector of output deviations from targets, and the output is
    the (continuous, unclamped) plant input — LQG assumes unconstrained
    inputs, which is one of its documented weaknesses.
    """

    controller: StateSpace  # discrete; maps output errors -> inputs
    lqr_gain: np.ndarray
    integral_gain: np.ndarray
    kalman_gain: np.ndarray
    closed_loop_stable: bool

    def summary(self):
        return (
            f"LQG controller: order {self.controller.n_states}, "
            f"closed loop {'stable' if self.closed_loop_stable else 'UNSTABLE'}"
        )


def lqg_synthesize(
    model: StateSpace,
    n_u: int,
    output_weights,
    input_weights,
    integral_weight=0.05,
    process_noise=1e-2,
    measurement_noise=1e-2,
):
    """Synthesize a discrete LQG tracking controller for ``model``.

    Parameters
    ----------
    model:
        Discrete model mapping ``[u; e]`` to ``y``; only the first ``n_u``
        inputs are actuated (external columns are ignored by LQG — it has no
        coordination channel, by design of the baseline).
    output_weights, input_weights:
        Quadratic weights on output errors and input moves.
    integral_weight:
        Weight on the error integrator states (provides offset-free
        tracking of the optimizer's targets).
    """
    if not model.is_discrete:
        raise ValueError("lqg_synthesize expects a discrete-time model")
    A = model.A
    B = model.B[:, :n_u]
    C = model.C
    n = model.n_states
    n_y = model.n_outputs
    output_weights = np.asarray(output_weights, dtype=float)
    input_weights = np.asarray(input_weights, dtype=float)
    if output_weights.size != n_y or input_weights.size != n_u:
        raise ValueError("weight vector lengths must match model dimensions")

    # Augment with (slightly leaky) output-error integrators:
    # xi[k+1] = rho*xi[k] + (y - r).  The leak keeps the augmented pencil
    # off the unit circle when an output is nearly input-independent.
    rho = 0.985
    A_aug = np.block([[A, np.zeros((n, n_y))], [C, rho * np.eye(n_y)]])
    B_aug = np.vstack([B, model.D[:, :n_u]])
    Q = np.block(
        [
            [C.T @ np.diag(output_weights) @ C, np.zeros((n, n_y))],
            [np.zeros((n_y, n)), integral_weight * np.eye(n_y)],
        ]
    )
    Q += 1e-9 * np.eye(n + n_y)
    R = np.diag(input_weights**2) + 1e-9 * np.eye(n_u)
    try:
        P = solve_discrete_are(A_aug, B_aug, Q, R)
    except Exception as exc:
        raise RuntimeError(f"LQR Riccati failed: {exc}") from exc
    K_full = np.linalg.solve(R + B_aug.T @ P @ B_aug, B_aug.T @ P @ A_aug)
    K_x = K_full[:, :n]
    K_i = K_full[:, n:]

    # Kalman filter on the un-augmented model.
    W = process_noise * np.eye(n)
    V = measurement_noise * np.eye(n_y)
    try:
        S = solve_discrete_are(A.T, C.T, W, V)
    except Exception as exc:
        raise RuntimeError(f"Kalman Riccati failed: {exc}") from exc
    L = S @ C.T @ np.linalg.inv(C @ S @ C.T + V)

    # Assemble the controller: state [xhat; xi], input err = y - r.
    # xhat[k+1] = A xhat + B u + L (err - C xhat)   (deviation coordinates)
    # xi[k+1]   = xi + err
    # u         = -K_x xhat - K_i xi
    Ak = np.block(
        [
            [A - L @ C - B @ K_x, -B @ K_i],
            [np.zeros((n_y, n)), rho * np.eye(n_y)],
        ]
    )
    Bk = np.vstack([L, np.eye(n_y)])
    Ck = np.hstack([-K_x, -K_i])
    Dk = np.zeros((n_u, n_y))
    controller = StateSpace(Ak, Bk, Ck, Dk, dt=model.dt)

    # Verify the nominal closed loop (plant + controller on error feedback).
    plant_u = StateSpace(A, B, C, model.D[:, :n_u], dt=model.dt)
    loop = _closed_loop(plant_u, controller)
    stable = loop.is_stable(tol=1e-9)
    return LQGResult(controller, K_x, K_i, L, stable)


def _closed_loop(plant: StateSpace, controller: StateSpace) -> StateSpace:
    """Closed loop with the controller driven by (y - r).

    With u = K(y - r), the loop matrix is (I - G K): that is positive
    feedback in the classical convention.
    """
    from ..lti import feedback, series

    open_loop = series(controller, plant)
    return feedback(open_loop, sign=+1)
