"""Tests for the Riccati solver and H-infinity synthesis."""

import numpy as np
import pytest

from repro.lti import PartitionedSystem, StateSpace, hinf_norm, lft_lower
from repro.robust import (
    RiccatiError,
    SynthesisError,
    care_hamiltonian,
    hinf_synthesize,
    solve_hinf_riccati,
)


class TestCareHamiltonian:
    def test_scalar_lqr_case(self):
        # A=0, S=B R^-1 B'=1, Q=1: X solves -X^2 + 1 = 0 -> X=1.
        X = care_hamiltonian(np.zeros((1, 1)), np.eye(1), np.eye(1))
        assert X[0, 0] == pytest.approx(1.0)

    def test_matches_scipy_on_definite_problem(self, rng):
        from scipy.linalg import solve_continuous_are

        A = rng.normal(size=(3, 3)) - 2 * np.eye(3)
        B = rng.normal(size=(3, 2))
        Q = np.eye(3)
        R = np.eye(2)
        expected = solve_continuous_are(A, B, Q, R)
        X = care_hamiltonian(A, B @ np.linalg.inv(R) @ B.T, Q)
        assert X == pytest.approx(expected, rel=1e-6)

    def test_raises_on_imaginary_axis(self):
        # A=0, S=0, Q=I: Hamiltonian eigenvalues are all zero.
        with pytest.raises(RiccatiError):
            care_hamiltonian(np.zeros((2, 2)), np.zeros((2, 2)), np.eye(2))

    def test_solution_stabilizes(self, rng):
        A = rng.normal(size=(3, 3))
        B = rng.normal(size=(3, 1))
        X = care_hamiltonian(A, B @ B.T, np.eye(3))
        closed = A - B @ B.T @ X
        assert np.max(np.linalg.eigvals(closed).real) < 0

    def test_hinf_riccati_psd(self, rng):
        A = rng.normal(size=(3, 3)) - 2 * np.eye(3)
        B1 = rng.normal(size=(3, 2))
        B2 = rng.normal(size=(3, 1))
        C1 = rng.normal(size=(2, 3))
        X = solve_hinf_riccati(A, B1, B2, C1, gamma=50.0)
        assert np.min(np.linalg.eigvalsh(X)) >= -1e-8


def _mixed_sensitivity_plant(wu=0.1, eps=0.01, a_e=0.1, a_m=20.0):
    """The hand-built SISO tracking plant used as the synthesis test bed."""
    A = np.array([
        [-1.0, 0.0, 0.0],
        [-1.0, -a_e, 0.0],
        [-a_m, 0.0, -a_m],
    ])
    B = np.array([
        [0.0, 0.0, 1.0],
        [a_e, 0.0, 0.0],
        [a_m, 0.0, 0.0],
    ])
    C = np.array([
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 0.0],
        [0.0, 0.0, 1.0],
    ])
    D = np.zeros((3, 3))
    D[1, 2] = wu
    D[2, 1] = eps
    return PartitionedSystem(StateSpace(A, B, C, D), n_w=2, n_z=2)


class TestHinfSynthesis:
    def test_synthesizes_and_verifies(self):
        plant = _mixed_sensitivity_plant()
        result = hinf_synthesize(plant)
        assert result.closed_loop.is_stable()
        assert result.achieved_norm <= result.gamma * 1.02
        assert result.controller.n_states == 3

    def test_achieved_norm_is_true_closed_loop_norm(self):
        plant = _mixed_sensitivity_plant()
        result = hinf_synthesize(plant)
        recomputed = hinf_norm(lft_lower(plant, result.controller))
        assert recomputed == pytest.approx(result.achieved_norm, rel=1e-6)

    def test_tracking_improves_with_lower_wu(self):
        cheap = hinf_synthesize(_mixed_sensitivity_plant(wu=0.05))
        dear = hinf_synthesize(_mixed_sensitivity_plant(wu=1.0))
        assert cheap.gamma < dear.gamma

    def test_rejects_discrete_plant(self, rng):
        sys_ = StateSpace([[0.5]], np.ones((1, 2)), np.ones((2, 1)),
                          np.zeros((2, 2)), dt=1.0)
        with pytest.raises(SynthesisError, match="continuous"):
            hinf_synthesize(PartitionedSystem(sys_, n_w=1, n_z=1))

    def test_rejects_nonzero_d11(self):
        plant = _mixed_sensitivity_plant()
        sys_ = plant.system
        D = sys_.D.copy()
        D[0, 0] = 0.5  # inject w -> z feedthrough
        bad = PartitionedSystem(
            StateSpace(sys_.A, sys_.B, sys_.C, D), n_w=2, n_z=2
        )
        with pytest.raises(SynthesisError, match="D11"):
            hinf_synthesize(bad)

    def test_rejects_rank_deficient_d12(self):
        plant = _mixed_sensitivity_plant(wu=0.0)
        with pytest.raises(SynthesisError):
            hinf_synthesize(plant)
