"""Tests for Lyapunov machinery, norms, bilinear transforms, reduction."""

import numpy as np
import pytest

from repro.lti import (
    StateSpace,
    balanced_truncation,
    continuous_to_discrete,
    controllability_gramian,
    discrete_to_continuous,
    h2_norm,
    hankel_singular_values,
    hinf_norm,
    is_controllable,
    is_observable,
    linf_norm_grid,
    lyapunov_solve,
    observability_gramian,
    ss,
    stable_unstable_split,
    static_gain,
)


class TestLyapunov:
    def test_discrete_identity(self):
        A = np.array([[0.5]])
        Q = np.array([[1.0]])
        X = lyapunov_solve(A, Q, discrete=True)
        assert A @ X @ A.T - X + Q == pytest.approx(np.zeros((1, 1)))

    def test_continuous_identity(self):
        A = np.array([[-2.0]])
        Q = np.array([[4.0]])
        X = lyapunov_solve(A, Q, discrete=False)
        assert X[0, 0] == pytest.approx(1.0)

    def test_gramian_requires_stability(self):
        unstable = ss([[1.5]], [[1.0]], [[1.0]], dt=1.0)
        with pytest.raises(ValueError, match="stable"):
            controllability_gramian(unstable)

    def test_gramians_psd(self, stable_discrete_system):
        for gram in (controllability_gramian(stable_discrete_system),
                     observability_gramian(stable_discrete_system)):
            assert np.min(np.linalg.eigvalsh(gram)) >= -1e-10

    def test_controllability_detects_unreachable_mode(self):
        sys_ = ss([[0.5, 0.0], [0.0, 0.3]], [[1.0], [0.0]], [[1.0, 1.0]], dt=1.0)
        assert not is_controllable(sys_)
        assert is_observable(sys_)


class TestNorms:
    def test_h2_first_order(self):
        # Continuous 1/(s+a): H2^2 = 1/(2a).
        sys_ = ss([[-2.0]], [[1.0]], [[1.0]])
        assert h2_norm(sys_) == pytest.approx(np.sqrt(1.0 / 4.0))

    def test_h2_unstable_is_inf(self):
        assert h2_norm(ss([[0.5]], [[1.0]], [[1.0]])) == np.inf

    def test_hinf_first_order_continuous(self):
        # |k/(jw+a)| peaks at DC: k/a.
        sys_ = ss([[-2.0]], [[1.0]], [[3.0]])
        assert hinf_norm(sys_) == pytest.approx(1.5, rel=1e-3)

    def test_hinf_first_order_discrete(self):
        # k/(z-a) peaks at z=1: k/(1-a).
        sys_ = ss([[0.5]], [[1.0]], [[1.0]], dt=1.0)
        assert hinf_norm(sys_) == pytest.approx(2.0, rel=1e-3)

    def test_hinf_static(self):
        gain = static_gain([[3.0, 0.0], [0.0, 1.0]])
        assert hinf_norm(gain) == pytest.approx(3.0)

    def test_hinf_above_grid_lower_bound(self, stable_discrete_system):
        assert hinf_norm(stable_discrete_system) >= linf_norm_grid(
            stable_discrete_system
        ) * (1 - 1e-6)

    def test_hinf_unstable_is_inf(self):
        assert hinf_norm(ss([[1.2]], [[1.0]], [[1.0]], dt=1.0)) == np.inf


class TestBilinear:
    def test_roundtrip_exact(self, stable_discrete_system):
        cont = discrete_to_continuous(stable_discrete_system)
        back = continuous_to_discrete(cont, stable_discrete_system.dt)
        assert back.A == pytest.approx(stable_discrete_system.A)
        assert back.B == pytest.approx(stable_discrete_system.B)
        assert back.C == pytest.approx(stable_discrete_system.C)
        assert back.D == pytest.approx(stable_discrete_system.D)

    def test_preserves_stability(self, stable_discrete_system):
        assert discrete_to_continuous(stable_discrete_system).is_stable()

    def test_preserves_hinf_norm(self, stable_discrete_system):
        cont = discrete_to_continuous(stable_discrete_system)
        assert hinf_norm(cont) == pytest.approx(
            hinf_norm(stable_discrete_system), rel=5e-3
        )

    def test_dc_gain_preserved(self, stable_discrete_system):
        cont = discrete_to_continuous(stable_discrete_system)
        assert cont.dc_gain() == pytest.approx(stable_discrete_system.dc_gain())


class TestReduction:
    def test_hankel_values_sorted(self, stable_discrete_system):
        hsv = hankel_singular_values(stable_discrete_system)
        assert np.all(np.diff(hsv) <= 1e-12)

    def test_truncation_error_within_bound(self, stable_discrete_system):
        reduced, bound = balanced_truncation(stable_discrete_system, 2)
        assert reduced.n_states == 2
        error = hinf_norm(stable_discrete_system - reduced)
        assert error <= bound * (1 + 1e-6)

    def test_truncation_noop_at_full_order(self, stable_discrete_system):
        reduced, bound = balanced_truncation(stable_discrete_system, 10)
        assert reduced is stable_discrete_system
        assert bound == 0.0

    def test_split_all_stable(self, stable_discrete_system):
        stable, unstable = stable_unstable_split(stable_discrete_system)
        assert unstable is None
        assert stable is stable_discrete_system

    def test_split_mixed(self):
        sys_ = ss([[0.5, 0.0], [0.0, 1.5]], [[1.0], [1.0]], [[1.0, 1.0]], dt=1.0)
        stable, unstable = stable_unstable_split(sys_)
        assert stable.n_states == 1
        assert unstable.n_states == 1
        # Additive decomposition must reproduce the transfer function.
        z = np.exp(1j * 0.3)
        total = stable.frequency_response(z) + unstable.frequency_response(z)
        assert total == pytest.approx(sys_.frequency_response(z))
