"""Shared fixtures: a small design context reused by integration tests.

Building a :class:`~repro.experiments.DesignContext` involves the training
campaign plus two D-K syntheses (~5 s), so it is session-scoped and built
with a reduced sample budget.
"""

import numpy as np
import pytest


@pytest.fixture(scope="session")
def design_context():
    from repro.experiments import DesignContext

    return DesignContext.create(samples_per_program=120, seed=99)


@pytest.fixture(scope="session")
def hw_design(design_context):
    return design_context.get_hw_design()


@pytest.fixture(scope="session")
def sw_design(design_context):
    return design_context.get_sw_design()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def stable_discrete_system(rng):
    """A random stable discrete MIMO system."""
    from repro.lti import StateSpace

    A = rng.normal(size=(4, 4))
    A *= 0.8 / max(np.max(np.abs(np.linalg.eigvals(A))), 1e-9)
    return StateSpace(A, rng.normal(size=(4, 2)), rng.normal(size=(3, 4)),
                      rng.normal(size=(3, 2)), dt=0.5)


@pytest.fixture
def stable_continuous_system(rng):
    """A random stable continuous MIMO system."""
    from repro.lti import StateSpace

    A = rng.normal(size=(4, 4))
    A = A - (np.max(np.linalg.eigvals(A).real) + 0.5) * np.eye(4)
    return StateSpace(A, rng.normal(size=(4, 2)), rng.normal(size=(3, 4)),
                      rng.normal(size=(3, 2)))
