"""Unit tests for the rack layer: specs, controllers, runtime, goldens."""

import dataclasses
import math

import pytest

from repro.board.specs import default_xu3_spec
from repro.obs import analyze_rack
from repro.rack import (
    BoardReading,
    BudgetGovernor,
    CoolingSpec,
    HeuristicRackController,
    JobSpec,
    Rack,
    RackBoardFault,
    RackSpec,
    SSVRackController,
    default_rack_spec,
    heterogeneous_rack_spec,
    instantiate_job_workload,
    rack_layer_spec,
)
from repro.verify.golden import (
    TraceMismatch,
    capture_rack_trace,
    compare_traces,
    load_golden,
    write_golden,
)


def _stream(n=3, workload="mcf@0.05", spacing=2.0, sla=60.0):
    return tuple(
        JobSpec(name=f"j{i}", workload=workload, arrival=spacing * i, sla=sla)
        for i in range(n)
    )


class TestRackSpec:
    def test_default_spec_shape(self):
        spec = default_rack_spec(n_boards=4)
        assert spec.n_boards == 4
        assert spec.min_cap() == pytest.approx(4 * spec.budget_floor)
        assert spec.power_cap > spec.min_cap()
        assert spec.board_periods(0) == int(
            round(spec.rack_period / spec.boards[0].control_period))
        assert "4 board(s)" in spec.describe()

    def test_heterogeneous_spec_mixes_variants(self):
        spec = heterogeneous_rack_spec(n_boards=4)
        periods = {spec.board_periods(i) for i in range(4)}
        assert len(periods) == 2  # two distinct control cadences

    def test_rejects_empty_rack(self):
        with pytest.raises(ValueError, match="at least one board"):
            RackSpec(boards=())

    def test_rejects_mixed_sim_dt(self):
        with pytest.raises(ValueError, match="sim_dt"):
            RackSpec(boards=(default_xu3_spec(sim_dt=0.05),
                             default_xu3_spec(sim_dt=0.1)))

    def test_rejects_nondividing_control_period(self):
        odd = dataclasses.replace(default_xu3_spec(), control_period=0.75)
        with pytest.raises(ValueError, match="divide the rack period"):
            RackSpec(boards=(odd,), rack_period=2.0)

    def test_rejects_cap_below_floors(self):
        with pytest.raises(ValueError, match="budget floors"):
            default_rack_spec(n_boards=4, power_cap=1.0)

    def test_rejects_fault_beyond_rack(self):
        with pytest.raises(ValueError, match="only 2 boards"):
            default_rack_spec(
                n_boards=2,
                faults=(RackBoardFault(board=5, start=1.0),))

    def test_rejects_bad_fault_kind(self):
        with pytest.raises(ValueError, match="unknown rack fault kind"):
            RackBoardFault(board=0, start=1.0, kind="meteor")

    def test_job_deadline(self):
        job = JobSpec(name="j", workload="mcf", arrival=5.0, sla=30.0)
        assert job.deadline == 35.0

    def test_cooling_derate(self):
        cooling = CoolingSpec(max_inlet=32.0, derate_per_degree=0.05)
        assert cooling.derate_fraction(30.0) == 1.0
        assert cooling.derate_fraction(34.0) == pytest.approx(0.9)
        assert cooling.steady_inlet(10.0) == pytest.approx(
            cooling.supply_temp + 10.0 * cooling.thermal_resistance)


class TestWorkloadScaling:
    @staticmethod
    def _work(app):
        return sum(ph.instructions for ph in app.phases)

    def test_plain_name_round_trips(self):
        apps = instantiate_job_workload("blackscholes")
        assert apps and all(self._work(a) > 0 for a in apps)

    def test_scale_suffix_shrinks_instructions(self):
        full = instantiate_job_workload("mcf")
        small = instantiate_job_workload("mcf@0.1")
        assert len(small) == len(full)
        for a_small, a_full in zip(small, full):
            assert self._work(a_small) == pytest.approx(
                0.1 * self._work(a_full))
            assert len(a_small.phases) == len(a_full.phases)

    def test_bad_scale_is_loud(self):
        with pytest.raises(ValueError):
            instantiate_job_workload("mcf@zero")
        with pytest.raises(ValueError):
            instantiate_job_workload("mcf@-1")

    def test_unknown_name_is_loud(self):
        with pytest.raises(KeyError):
            instantiate_job_workload("not-a-workload@0.5")


class TestRackControllers:
    def _readings(self, powers, **kw):
        return [BoardReading(power=p, headroom=1.0, queue_depth=1, busy=True,
                             **kw)
                for p in powers]

    def test_uniform_splits_cap_evenly(self):
        spec = default_rack_spec(n_boards=4)
        ctl = HeuristicRackController(spec, mode="uniform")
        budgets = ctl.step(self._readings([1.0] * 4), 8.0)
        assert budgets == pytest.approx([2.0] * 4)

    def test_greedy_feeds_declared_demand(self):
        spec = default_rack_spec(n_boards=2)
        ctl = HeuristicRackController(spec, mode="greedy")
        budgets = ctl.step(self._readings([3.0, 1.0]), spec.power_cap)
        assert budgets[0] > budgets[1]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown heuristic"):
            HeuristicRackController(default_rack_spec(2), mode="chaotic")

    def test_untrusted_board_pinned_to_floor(self):
        spec = default_rack_spec(n_boards=2)
        ctl = SSVRackController(spec)
        readings = self._readings([float("nan"), 2.0])
        budgets = ctl.step(readings, spec.power_cap)
        assert budgets[0] == pytest.approx(spec.budget_floor)
        assert budgets[1] > budgets[0]

    def test_offline_board_releases_budget(self):
        spec = default_rack_spec(n_boards=2)
        ctl = SSVRackController(spec)
        readings = [BoardReading(power=0.0, headroom=0.0, queue_depth=0,
                                 online=False),
                    BoardReading(power=2.0, headroom=1.0, queue_depth=2,
                                 busy=True)]
        budgets = ctl.step(readings, spec.power_cap)
        assert budgets[0] == 0.0
        assert budgets[1] > 0.0

    def test_ssv_gain_is_certified(self):
        spec = default_rack_spec(n_boards=4)
        ctl = SSVRackController(spec)
        assert ctl.gain == pytest.approx(0.65)
        assert ctl.mu_peak <= 1.0
        assert any(peak > 1.0 for g, peak in ctl.mu_history if g > ctl.gain)

    def test_governor_probes_out_of_idle(self):
        governor = BudgetGovernor(default_xu3_spec())
        governor.level = 0.2  # parked low by a past tight budget
        governor.command(2.0, 0.0)  # budget but no draw: probe upward
        assert governor.level > 0.2

    def test_governor_untrusted_power_holds_level(self):
        governor = BudgetGovernor(default_xu3_spec())
        governor.command(2.0, 1.0)
        level = governor.level
        governor.command(2.0, float("nan"))
        assert governor.level == level

    def test_layer_spec_declares_rack_interface(self):
        spec = default_rack_spec(n_boards=3)
        layer = rack_layer_spec(spec)
        inputs = {s.name for s in layer.inputs}
        outputs = {s.name for s in layer.outputs}
        assert {"budget_0", "budget_1", "budget_2"} <= inputs
        assert {"power_0", "headroom_1", "queue_depth_2",
                "power_total"} <= outputs


class TestRackRuntime:
    def test_stream_completes_and_accounts(self):
        spec = default_rack_spec(n_boards=2, jobs=_stream(3))
        result = Rack(spec, record=True, seed=3).run(max_time=120.0)
        assert result.jobs_admitted == 3
        assert result.jobs_completed == 3
        assert result.jobs_unfinished == 0
        assert result.sla_misses == 0
        assert result.energy > 0
        assert result.makespan > 0
        assert result.exd == pytest.approx(result.energy * result.makespan)
        assert len(result.trace.times) == result.periods
        summary = result.summary()
        assert "3/3" in summary

    def test_bank_and_scalar_paths_identical(self):
        spec = heterogeneous_rack_spec(n_boards=3, jobs=_stream(3))
        rb = Rack(spec, use_bank=True, record=True, seed=5).run(max_time=60.0)
        rs = Rack(spec, use_bank=False, record=True, seed=5).run(max_time=60.0)
        assert rb.energy == rs.energy
        assert rb.trace.power_true == rs.trace.power_true
        assert rb.trace.budget_total == rs.trace.budget_total
        assert rb.bank_counters and not rs.bank_counters

    def test_offline_fault_requeues_and_recovers(self):
        jobs = _stream(2, workload="mcf@0.1", spacing=1.0, sla=200.0)
        faults = (RackBoardFault(board=1, start=6.0, duration=10.0,
                                 kind="offline"),)
        spec = default_rack_spec(n_boards=2, jobs=jobs, faults=faults)
        result = Rack(spec, record=True, seed=3).run(max_time=200.0)
        assert result.requeues >= 1
        assert result.jobs_completed == 2
        # While offline, the faulted board's budget is zero.
        hit = [k for k, t in enumerate(result.trace.times) if 6.0 <= t < 16.0]
        assert hit and all(result.trace.budgets[k][1] == 0.0 for k in hit)

    def test_sensor_fault_pins_board_to_floor(self):
        jobs = _stream(2, workload="mcf@0.1", spacing=0.0, sla=200.0)
        faults = (RackBoardFault(board=0, start=4.0, duration=8.0,
                                 kind="power-sensor"),)
        spec = default_rack_spec(n_boards=2, jobs=jobs, faults=faults)
        result = Rack(spec, record=True, seed=3).run(max_time=40.0)
        hit = [k for k, t in enumerate(result.trace.times) if 6.0 <= t < 12.0]
        assert hit
        for k in hit:
            assert result.trace.budgets[k][0] == pytest.approx(
                spec.budget_floor)

    def test_cap_schedule_steps_down(self):
        jobs = _stream(3, workload="blackscholes@0.3", spacing=0.0, sla=500.0)
        spec = default_rack_spec(n_boards=2, jobs=jobs)
        schedule = [(0.0, spec.power_cap), (10.0, 0.7 * spec.power_cap)]
        result = Rack(spec, record=True, seed=3).run(max_time=30.0,
                                                     cap_schedule=schedule)
        before = [c for t, c in zip(result.trace.times, result.trace.cap)
                  if t < 10.0]
        after = [c for t, c in zip(result.trace.times, result.trace.cap)
                 if t >= 10.0]
        assert before and after
        assert max(after) < min(before)

    def test_sla_misses_counted(self):
        jobs = _stream(2, workload="mcf@0.1", spacing=0.0, sla=1.0)
        spec = default_rack_spec(n_boards=2, jobs=jobs)
        result = Rack(spec, record=True, seed=3).run(max_time=120.0)
        assert result.jobs_completed == 2
        assert result.sla_misses == 2


class TestRackObservability:
    def test_analyze_rack_kpis(self):
        spec = default_rack_spec(n_boards=2, jobs=_stream(3))
        result = Rack(spec, record=True, seed=3).run(max_time=120.0)
        quality = analyze_rack(result, spec=spec)
        assert quality.periods == result.periods
        assert quality.jobs_completed == 3
        assert quality.cap_exposure.integral >= 0.0
        assert quality.inlet_peak >= spec.cooling.supply_temp
        assert quality.queue_depth_peak >= 0
        rendered = quality.render()
        assert "rack quality" in rendered and "cooling" in rendered
        as_dict = quality.to_dict()
        assert as_dict["controller"] == result.controller

    def test_analyze_rack_step_response(self):
        jobs = _stream(4, workload="blackscholes@0.4", spacing=0.0,
                       sla=1000.0)
        spec = default_rack_spec(n_boards=2, jobs=jobs)
        schedule = [(0.0, spec.power_cap), (16.0, 0.7 * spec.power_cap)]
        result = Rack(spec, record=True, seed=3).run(max_time=60.0,
                                                     cap_schedule=schedule)
        quality = analyze_rack(result, spec=spec, step_time=16.0)
        signals = [r.signal for r in quality.responses]
        assert "budget_total" in signals
        resp = next(r for r in quality.responses if r.signal == "budget_total")
        assert resp.settled
        assert resp.settling_time < 40.0


class TestRackGoldens:
    def test_capture_round_trips_through_golden_machinery(self, tmp_path):
        trace = capture_rack_trace("rack-ssv", "stream", max_time=60.0)
        path = write_golden(trace, "rack-ssv", "stream", golden_dir=tmp_path)
        assert path.exists()
        loaded = load_golden("rack-ssv", "stream", golden_dir=tmp_path)
        fresh = capture_rack_trace("rack-ssv", "stream", max_time=60.0)
        assert compare_traces(loaded, fresh) == []

    def test_drifted_trace_is_detected(self, tmp_path):
        trace = capture_rack_trace("rack-ssv", "stream", max_time=60.0)
        write_golden(trace, "rack-ssv", "stream", golden_dir=tmp_path)
        loaded = load_golden("rack-ssv", "stream", golden_dir=tmp_path)
        drifted = capture_rack_trace("rack-ssv", "stream", max_time=60.0)
        drifted["signals"]["budget_total"][3] *= 1.5
        mismatches = compare_traces(loaded, drifted)
        assert mismatches
        assert any("budget_total" in str(m) for m in mismatches)

    def test_missing_golden_is_loud(self, tmp_path):
        from repro.verify.golden import verify_rack_goldens

        report = verify_rack_goldens(golden_dir=tmp_path,
                                     matrix=(("rack-ssv", "stream"),))
        mismatches = report["rack-ssv/stream"]
        assert mismatches
        assert any(isinstance(m, TraceMismatch)
                   and "golden-file-missing" in m.location
                   for m in mismatches)
