"""Chrome/Perfetto trace export schema + span-nesting round trips.

Validates the contract ``trace.json`` promises to external viewers
(chrome://tracing, ui.perfetto.dev): required keys, monotonic
timestamps, complete ``X`` events with durations.  Also round-trips span
nesting through tracing → ``load_spans``, including a merged
multi-worker directory, and exercises the torn-artifact tolerance of the
summarize readers.
"""

import json

import pytest

from repro.telemetry import TelemetrySession, Tracer, deactivate
from repro.telemetry.merge import merge_worker_dirs
from repro.telemetry.summarize import (
    load_flight_dumps,
    load_spans,
    summarize_dir,
)


@pytest.fixture(autouse=True)
def _no_global_session():
    deactivate()
    yield
    deactivate()


def _record_session(out_dir, periods=5):
    """A session with nested spans per period, closed (trace.json written)."""
    session = TelemetrySession(out_dir)
    for _ in range(periods):
        session.tracer.begin_period(board_time=1.0)
        with session.span("sim"):
            with session.span("sample"):
                pass
            with session.span("hw.step"):
                pass
        session.instant("fault.injected", cat="fault", kind="test")
    session.close()
    return out_dir


REQUIRED_KEYS = {"name", "cat", "ph", "pid", "tid", "ts"}


class TestChromeTraceSchema:
    @pytest.fixture()
    def events(self, tmp_path):
        _record_session(tmp_path)
        return json.loads((tmp_path / "trace.json").read_text())

    def test_loads_as_event_array(self, events):
        assert isinstance(events, list) and events

    def test_required_keys_present(self, events):
        for event in events:
            assert REQUIRED_KEYS <= set(event), event

    def test_phases_are_complete_or_instant(self, events):
        phases = {event["ph"] for event in events}
        assert phases <= {"X", "i"}
        assert "X" in phases and "i" in phases

    def test_complete_events_carry_duration(self, events):
        for event in events:
            if event["ph"] == "X":
                assert "dur" in event and event["dur"] >= 0
            else:
                assert event.get("s") == "p"  # scoped instant

    def test_timestamps_monotonic(self, events):
        ts = [event["ts"] for event in events]
        assert ts == sorted(ts)

    def test_args_carry_trace_id(self, events):
        spans = [e for e in events if e["ph"] == "X"]
        assert all("trace_id" in e["args"] for e in spans)


class TestSpanNestingRoundTrip:
    def test_children_contained_in_parents(self, tmp_path):
        _record_session(tmp_path)
        spans = [r for r in load_spans(tmp_path) if r.get("phase") == "span"]
        by_period = {}
        for record in spans:
            by_period.setdefault(record["trace_id"], []).append(record)
        assert len(by_period) == 5
        for period_spans, records in by_period.items():
            names = {r["name"] for r in records}
            assert names == {"sim", "sample", "hw.step"}
            parent = next(r for r in records if r["name"] == "sim")
            p0 = parent["ts_us"]
            p1 = p0 + parent["dur_us"]
            for child in records:
                if child is parent:
                    continue
                assert child["ts_us"] >= p0 - 0.1
                assert child["ts_us"] + child["dur_us"] <= p1 + 0.1

    def test_merged_worker_dirs_preserve_nesting(self, tmp_path):
        # Two "workers" record independently; the merged parent stream
        # must keep each worker's spans attributed and nested.
        for name in ("worker-1001", "worker-1002"):
            _record_session(tmp_path / name, periods=2)
        merge_worker_dirs(tmp_path)
        spans = [r for r in load_spans(tmp_path) if r.get("phase") == "span"]
        workers = {r["worker"] for r in spans}
        assert workers == {"worker-1001", "worker-1002"}
        for worker in workers:
            per_worker = [r for r in spans if r["worker"] == worker]
            for trace_id in {r["trace_id"] for r in per_worker}:
                records = [r for r in per_worker
                           if r["trace_id"] == trace_id]
                parent = next(r for r in records if r["name"] == "sim")
                for child in records:
                    assert child["ts_us"] >= parent["ts_us"] - 0.1
        # The merged metrics snapshot also survives summarize.
        assert "control-loop time by span" in summarize_dir(tmp_path)

    def test_merged_dir_trace_counts_add_up(self, tmp_path):
        for name in ("worker-1", "worker-2"):
            _record_session(tmp_path / name, periods=3)
        merge_worker_dirs(tmp_path)
        spans = [r for r in load_spans(tmp_path) if r.get("phase") == "span"]
        assert len(spans) == 2 * 3 * 3  # 2 workers x 3 periods x 3 spans


class TestTornArtifactTolerance:
    def test_torn_spans_line_skipped_with_warning(self, tmp_path):
        _record_session(tmp_path)
        intact = len(load_spans(tmp_path))
        with open(tmp_path / "spans.jsonl", "a") as fh:
            fh.write('{"name": "sim", "ts_us"')  # torn tail
        with pytest.warns(RuntimeWarning, match="1 torn/corrupt line"):
            records = load_spans(tmp_path)
        assert len(records) == intact

    def test_non_object_span_lines_skipped(self, tmp_path):
        (tmp_path / "spans.jsonl").write_text(
            '{"name": "a", "phase": "span", "dur_us": 1.0}\n[1,2,3]\n')
        with pytest.warns(RuntimeWarning):
            records = load_spans(tmp_path)
        assert len(records) == 1

    def test_corrupt_flight_dump_skipped_with_warning(self, tmp_path):
        (tmp_path / "flight-000.json").write_text(
            json.dumps({"sequence": 0, "reason": "test", "snapshots": []}))
        (tmp_path / "flight-001.json").write_text('{"sequence": 1, "rea')
        with pytest.warns(RuntimeWarning, match="flight dump"):
            dumps = load_flight_dumps(tmp_path)
        assert [d["sequence"] for d in dumps] == [0]

    def test_summarize_survives_torn_artifacts(self, tmp_path):
        _record_session(tmp_path)
        with open(tmp_path / "spans.jsonl", "a") as fh:
            fh.write("{torn")
        (tmp_path / "flight-000.json").write_text("{torn")
        with pytest.warns(RuntimeWarning):
            report = summarize_dir(tmp_path)
        assert "control-loop time by span" in report

    def test_empty_dir_raises_with_clear_message(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no telemetry artifacts"):
            summarize_dir(tmp_path)

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not a telemetry"):
            summarize_dir(tmp_path / "absent")
