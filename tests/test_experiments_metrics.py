"""Tests for repro.experiments.metrics: RunMetrics, normalization, ripple."""

import numpy as np
import pytest

from repro.experiments.metrics import RunMetrics, normalize_to, oscillation_stats


def _metrics(scheme="s", t=10.0, energy=50.0, completed=True):
    return RunMetrics(scheme=scheme, workload="w", execution_time=t,
                      energy=energy, completed=completed)


class TestRunMetrics:
    def test_exd_and_ed2(self):
        m = _metrics(t=10.0, energy=50.0)
        assert m.exd == pytest.approx(500.0)
        assert m.ed2 == pytest.approx(5000.0)

    def test_summary_contains_fields(self):
        text = _metrics(scheme="yukta", t=12.5, energy=60.0).summary()
        assert "yukta" in text
        assert "t=   12.5s" in text
        assert "TIMEOUT" not in text

    def test_summary_flags_timeout(self):
        assert "[TIMEOUT]" in _metrics(completed=False).summary()

    def test_default_containers_are_per_instance(self):
        a, b = _metrics(), _metrics()
        a.trace["x"] = 1
        a.notes["y"] = 2
        assert b.trace == {} and b.notes == {}


class TestNormalizeTo:
    def test_normalizes_run_metrics(self):
        by_scheme = {
            "base": _metrics(t=10.0, energy=50.0),   # ExD 500
            "fast": _metrics(t=5.0, energy=50.0),    # ExD 250
        }
        out = normalize_to(by_scheme, "base")
        assert out["base"] == pytest.approx(1.0)
        assert out["fast"] == pytest.approx(0.5)

    def test_other_attribute(self):
        by_scheme = {"a": _metrics(t=2.0, energy=8.0),
                     "b": _metrics(t=4.0, energy=4.0)}
        out = normalize_to(by_scheme, "a", attribute="energy")
        assert out["b"] == pytest.approx(0.5)

    def test_accepts_raw_numbers(self):
        out = normalize_to({"a": 4.0, "b": 2.0}, "a")
        assert out == {"a": 1.0, "b": 0.5}

    def test_nonpositive_baseline_raises(self):
        with pytest.raises(ValueError, match="nonpositive"):
            normalize_to({"a": 0.0, "b": 2.0}, "a")

    def test_missing_baseline_raises_keyerror(self):
        with pytest.raises(KeyError):
            normalize_to({"a": 1.0}, "zzz")


class TestOscillationStats:
    def test_empty_series(self):
        stats = oscillation_stats([])
        assert stats == {"peaks_over_limit": 0, "ripple": 0.0,
                         "steady_mean": 0.0}

    def test_short_series_uses_plain_mean(self):
        stats = oscillation_stats([1.0, 2.0, 3.0])
        assert stats["peaks_over_limit"] == 0
        assert stats["ripple"] == 0.0
        assert stats["steady_mean"] == pytest.approx(2.0)

    def test_constant_series_has_no_ripple(self):
        stats = oscillation_stats(np.full(100, 5.0), limit=6.0)
        assert stats["peaks_over_limit"] == 0
        assert stats["ripple"] == pytest.approx(0.0, abs=1e-12)
        assert stats["steady_mean"] == pytest.approx(5.0)

    def test_counts_excursions_over_limit(self):
        series = np.ones(40)
        series[5:8] = 3.0   # excursion 1
        series[20:25] = 3.0  # excursion 2
        stats = oscillation_stats(series, limit=2.0)
        assert stats["peaks_over_limit"] == 2

    def test_counts_series_starting_above_limit(self):
        series = np.ones(40)
        series[:4] = 3.0    # already above at t=0
        series[10:12] = 3.0  # plus one rising edge
        assert oscillation_stats(series, limit=2.0)["peaks_over_limit"] == 2

    def test_no_limit_counts_nothing(self):
        series = np.sin(np.linspace(0, 20, 200)) * 10
        assert oscillation_stats(series)["peaks_over_limit"] == 0

    def test_ripple_sees_oscillation_not_trend(self):
        t = np.linspace(0, 1, 400)
        trend = 10.0 * t  # slow ramp: mostly removed by the moving average
        wobble = 0.5 * np.sin(2 * np.pi * 50 * t)  # fast ripple: kept
        quiet = oscillation_stats(trend)["ripple"]
        noisy = oscillation_stats(trend + wobble)["ripple"]
        assert noisy > 5 * quiet
        assert noisy == pytest.approx(np.std(wobble), rel=0.2)

    def test_steady_mean_is_last_half(self):
        series = np.concatenate([np.zeros(50), np.full(50, 4.0)])
        assert oscillation_stats(series)["steady_mean"] == pytest.approx(4.0)
