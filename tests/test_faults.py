"""Tests for the fault-injection subsystem (repro.faults)."""

import numpy as np
import pytest

from repro.board import BIG, LITTLE, Board, default_xu3_spec
from repro.faults import (
    CLUSTER_KINDS,
    DROPOUT_SENTINEL,
    FAULT_KINDS,
    FaultCampaign,
    FaultEvent,
    FaultInjector,
    SensorFault,
    default_fault_matrix,
    heatsink_detachment,
    inject_heatsink_fault,
    inject_sensor_fault,
    sensor_miscalibration,
)
from repro.workloads import Application, Phase


def _board(seed=1):
    app = Application("tiny", [Phase("p", 4, 60.0, mpki=0.5)])
    return Board(app, spec=default_xu3_spec(), seed=seed, record=False)


class TestFaultEvents:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor-strike")

    def test_cluster_kinds_require_cluster(self):
        for kind in sorted(CLUSTER_KINDS):
            with pytest.raises(ValueError):
                FaultEvent(kind, magnitude=1.0)
            FaultEvent(kind, cluster=BIG, magnitude=1.0)  # fine with a cluster
        with pytest.raises(ValueError):
            FaultEvent("temp-bias", cluster=BIG, magnitude=1.0)  # board-wide

    def test_bias_kinds_require_magnitude(self):
        with pytest.raises(ValueError):
            FaultEvent("temp-bias")
        # Plant faults carry sensible defaults instead.
        assert FaultEvent("heatsink-detach").magnitude == pytest.approx(2.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("temp-bias", duration=-1.0)

    def test_permanent_vs_transient_window(self):
        permanent = FaultEvent("temp-bias", start=5.0, magnitude=-10.0)
        assert permanent.permanent
        assert permanent.active_at(5.0)
        assert permanent.active_at(1e9)
        assert not permanent.active_at(4.9)
        transient = FaultEvent("temp-bias", start=5.0, duration=2.0,
                               magnitude=-10.0)
        assert not transient.permanent
        assert transient.active_at(6.9)
        assert not transient.active_at(7.0)

    def test_campaign_sorts_and_reports_onset(self):
        campaign = FaultCampaign([
            FaultEvent("temp-bias", start=9.0, magnitude=-1.0),
            FaultEvent("heatsink-detach", start=3.0),
        ])
        assert campaign.first_onset() == 3.0
        assert [e.start for e in campaign] == [3.0, 9.0]

    def test_default_matrix_covers_every_kind_class(self):
        matrix = dict(default_fault_matrix())
        quick = dict(default_fault_matrix(quick=True))
        assert set(quick) <= set(matrix)
        kinds = {e.kind for campaign in matrix.values() for e in campaign}
        assert "heatsink-detach" in kinds
        assert "dvfs-ignored" in kinds
        assert any(k.startswith("temp-") for k in kinds)
        assert any(k.startswith("power-") for k in kinds)
        assert kinds <= FAULT_KINDS


class TestSensorFault:
    def test_bias(self):
        fault = SensorFault("bias", magnitude=-15.0)
        assert fault(80.0) == pytest.approx(65.0)

    def test_stuck_holds_first_latched_value(self):
        fault = SensorFault("stuck")
        assert fault(73.5) == 73.5
        assert fault(90.0) == 73.5  # still the latched value
        assert fault(10.0) == 73.5

    def test_dropout_returns_nan_sentinel(self):
        fault = SensorFault("dropout")
        assert np.isnan(fault(55.0))
        assert np.isnan(DROPOUT_SENTINEL)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SensorFault("jitter")

    def test_noise_is_reproducible_with_seeded_rngs(self):
        a = SensorFault("noise", magnitude=2.0, rng=np.random.default_rng(7))
        b = SensorFault("noise", magnitude=2.0, rng=np.random.default_rng(7))
        assert [a(50.0) for _ in range(5)] == [b(50.0) for _ in range(5)]


class TestFaultInjector:
    def test_temp_bias_applies_and_reverts(self):
        board = _board()
        for _ in range(10):
            board.step()
        healthy = board.read_temperature()
        event = FaultEvent("temp-bias", start=board.time, duration=0.5,
                           magnitude=-15.0)
        injector = FaultInjector(board, event)
        injector.advance()
        assert board.read_temperature() == pytest.approx(healthy - 15.0)
        for _ in range(11):
            board.step()
        injector.advance()
        assert board.temp_sensor.fault_hook is None  # reverted
        assert abs(board.read_temperature() - healthy) < 10.0

    def test_power_dropout_reads_sentinel(self):
        board = _board()
        event = FaultEvent("power-dropout", start=0.0, cluster=BIG)
        FaultInjector(board, event).advance()
        for _ in range(10):
            board.step()
        assert np.isnan(board.read_power(BIG))
        assert np.isfinite(board.read_power(LITTLE))

    def test_transient_heatsink_restores_plant(self):
        board = _board()
        r0 = board.thermal.resistance
        ceff0 = board.spec.big.ceff_dynamic
        campaign = heatsink_detachment(start=0.0, duration=1.0)
        injector = FaultInjector(board, campaign)
        injector.advance()
        assert board.thermal.resistance == pytest.approx(2.0 * r0)
        assert board.spec.big.ceff_dynamic == pytest.approx(1.6 * ceff0)
        for _ in range(25):
            board.step()
        injector.advance()
        assert board.thermal.resistance == pytest.approx(r0)
        assert board.spec.big.ceff_dynamic == pytest.approx(ceff0)

    def test_dvfs_ignored_blocks_frequency_writes(self):
        board = _board()
        f0 = board.clusters[BIG].frequency
        injector = FaultInjector(
            board, FaultEvent("dvfs-ignored", start=0.0, duration=1.0,
                              cluster=BIG)
        ).advance()
        board.set_cluster_frequency(BIG, 1.0)
        assert board.clusters[BIG].frequency == pytest.approx(f0)
        board.set_cluster_frequency(LITTLE, 0.9)  # other cluster unaffected
        assert board.clusters[LITTLE].frequency == pytest.approx(0.9)
        for _ in range(25):
            board.step()
        injector.advance()
        board.set_cluster_frequency(BIG, 1.0)
        assert board.clusters[BIG].frequency == pytest.approx(1.0)

    def test_hotplug_and_placement_stuck(self):
        board = _board()
        injector = FaultInjector(board, FaultCampaign([
            FaultEvent("hotplug-stuck", start=0.0, cluster=BIG),
            FaultEvent("placement-stuck", start=0.0),
        ])).advance()
        n0 = board.clusters[BIG].cores_on
        board.set_active_cores(BIG, max(1, n0 - 1))
        assert board.clusters[BIG].cores_on == n0
        assignment0 = repr(board.placement.assignment)
        board.set_placement_knobs(1, 1.0, 1.0)
        assert repr(board.placement.assignment) == assignment0
        injector.detach()
        assert board.fault_hooks is None

    def test_identically_seeded_boards_match_under_noise_fault(self):
        readings = []
        for _ in range(2):
            board = _board(seed=42)
            FaultInjector(
                board, FaultEvent("temp-noise", start=0.0, magnitude=3.0),
                seed=5,
            ).advance()
            trace = []
            for _ in range(30):
                board.step()
                trace.append(board.read_temperature())
            readings.append(trace)
        assert readings[0] == readings[1]


class TestLegacyHelpers:
    def test_reexported_from_exhaustion(self):
        from repro.experiments import exhaustion

        assert exhaustion.inject_heatsink_fault is inject_heatsink_fault
        assert exhaustion.inject_sensor_fault is inject_sensor_fault

    def test_heatsink_helper_matches_old_mutations(self):
        board = _board()
        r0 = board.thermal.resistance
        ceff0 = board.spec.big.ceff_dynamic
        inject_heatsink_fault(board)
        assert board.thermal.resistance == pytest.approx(2.0 * r0)
        assert board.spec.big.ceff_dynamic == pytest.approx(1.6 * ceff0)

    def test_sensor_helper_biases_reads_only(self):
        board = _board()
        for _ in range(10):
            board.step()
        true_temp = board.thermal.temperature
        inject_sensor_fault(board, bias=-15.0)
        # The read is biased; the true thermal state (what the emergency
        # firmware sees) is not.
        assert board.read_temperature() < true_temp - 5.0
        assert board.thermal.temperature == pytest.approx(true_temp)

    def test_sensor_miscalibration_campaign_names_kind(self):
        campaign = sensor_miscalibration(start=1.0)
        assert [e.kind for e in campaign] == ["temp-bias"]
