"""Tests for the per-figure experiment modules (quick configurations)."""

import numpy as np
import pytest

from repro.experiments import fig15, fig16, fig17, hwcost, tables


class TestTables:
    def test_table1_marks_yukta_choices(self):
        text = tables.table1()
        assert "*MIMO*" in text
        assert "*SSV*" in text
        assert "*Collaborative*" in text

    def test_table2_lists_hw_signals(self):
        text = tables.table2()
        assert "freq_big" in text
        assert "+-40%" in text

    def test_table3_lists_sw_signals(self):
        text = tables.table3()
        assert "n_threads_big" in text
        assert "+-50%" in text

    def test_table4_covers_all_schemes(self):
        text = tables.table4()
        for scheme in ("coordinated-heuristic", "yukta-hwssv-osssv",
                       "monolithic-lqg"):
            assert scheme in text


@pytest.mark.slow
class TestSensitivityModules:
    def test_fixed_target_run_produces_series(self, design_context):
        times, perf, records = fig15.run_fixed_targets(
            design_context, max_time=40.0
        )
        assert len(times) == len(perf)
        assert len(times) > 20
        assert np.all(np.diff(times) > 0)

    def test_fig16_synthesis_sweep(self, design_context):
        result = fig16.run(design_context, include_exd=False,
                           guardbands=[0.4, 2.5])
        assert set(result.gamma) == {0.4, 2.5}
        # Robust-control headline: huge guardbands still synthesize, with
        # achieved bounds growing slowly.
        assert result.achieved_bounds[2.5] < 1.5
        assert "guardband" in result.render()

    def test_hwcost_matches_paper_scale(self, design_context):
        result = hwcost.run(design_context)
        assert result.n_states <= 20
        assert result.macs < 1500
        assert result.fixed_point_error < 1e-2
        assert "VI-D" in result.render()


@pytest.mark.slow
class TestVariantContexts:
    def test_variant_shares_characterization(self, design_context):
        variant = design_context.variant(guardband_override=1.0)
        assert variant.characterization is design_context.characterization
        assert variant.hw_design is None  # designs are not shared

    def test_bounds_override_changes_spec(self, design_context):
        variant = design_context.variant(
            bounds_override=[0.5, 0.25, 0.25, 0.25]
        )
        spec = variant._hw_spec()
        assert spec.outputs[0].bound_fraction == 0.5

    def test_weight_override_changes_spec(self, design_context):
        variant = design_context.variant(input_weight_override=2.0)
        spec = variant._hw_spec()
        assert all(s.weight == 2.0 for s in spec.inputs)
