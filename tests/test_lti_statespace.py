"""Unit tests for the state-space core."""

import numpy as np
import pytest

from repro.lti import StateSpace, append, feedback, parallel, series, ss, static_gain


class TestConstruction:
    def test_dimensions(self):
        sys_ = StateSpace([[0.5]], [[1.0, 2.0]], [[1.0], [2.0]])
        assert sys_.n_states == 1
        assert sys_.n_inputs == 2
        assert sys_.n_outputs == 2
        assert not sys_.is_discrete

    def test_default_d_is_zero(self):
        sys_ = StateSpace([[0.5]], [[1.0]], [[1.0]])
        assert np.all(sys_.D == 0.0)

    def test_rejects_nonsquare_a(self):
        with pytest.raises(ValueError, match="square"):
            StateSpace([[1.0, 2.0]], [[1.0]], [[1.0]])

    def test_rejects_mismatched_b(self):
        with pytest.raises(ValueError):
            StateSpace([[0.5]], [[1.0], [2.0]], [[1.0]])

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError, match="dt"):
            StateSpace([[0.5]], [[1.0]], [[1.0]], dt=0.0)

    def test_static_gain_has_no_states(self):
        gain = static_gain([[2.0, 0.0], [0.0, 3.0]])
        assert gain.n_states == 0
        assert np.allclose(gain.dc_gain(), [[2.0, 0.0], [0.0, 3.0]])


class TestStabilityAndPoles:
    def test_discrete_stability(self):
        assert ss([[0.9]], [[1.0]], [[1.0]], dt=1.0).is_stable()
        assert not ss([[1.1]], [[1.0]], [[1.0]], dt=1.0).is_stable()

    def test_continuous_stability(self):
        assert ss([[-1.0]], [[1.0]], [[1.0]]).is_stable()
        assert not ss([[0.1]], [[1.0]], [[1.0]]).is_stable()

    def test_spectral_radius(self):
        sys_ = ss([[0.5, 0.0], [0.0, -0.7]], np.eye(2), np.eye(2), dt=1.0)
        assert sys_.spectral_radius() == pytest.approx(0.7)

    def test_empty_system_is_stable(self):
        assert static_gain([[1.0]]).is_stable()


class TestSimulation:
    def test_step_first_order(self):
        # x' = 0.5x + u, y = x : step response 1, 1.5, 1.75 ...
        sys_ = ss([[0.5]], [[1.0]], [[1.0]], dt=1.0)
        _, ys = sys_.simulate(np.ones((4, 1)))
        assert ys[:, 0] == pytest.approx([0.0, 1.0, 1.5, 1.75])

    def test_simulate_rejects_wrong_channels(self):
        sys_ = ss([[0.5]], [[1.0]], [[1.0]], dt=1.0)
        with pytest.raises(ValueError, match="channels"):
            sys_.simulate(np.ones((4, 2)))

    def test_step_requires_discrete(self):
        sys_ = ss([[-0.5]], [[1.0]], [[1.0]])
        with pytest.raises(ValueError, match="discrete"):
            sys_.step(np.zeros(1), np.zeros(1))

    def test_dc_gain_matches_steady_state(self, stable_discrete_system):
        sys_ = stable_discrete_system
        _, ys = sys_.simulate(np.ones((400, sys_.n_inputs)))
        assert ys[-1] == pytest.approx(sys_.dc_gain().sum(axis=1), rel=1e-3)


class TestAlgebra:
    def test_series_matches_response_product(self):
        g1 = ss([[0.5]], [[1.0]], [[1.0]], dt=1.0)
        g2 = ss([[0.2]], [[1.0]], [[2.0]], dt=1.0)
        chained = series(g1, g2)
        z = np.exp(1j * 0.3)
        expected = g2.frequency_response(z) @ g1.frequency_response(z)
        assert chained.frequency_response(z) == pytest.approx(expected)

    def test_parallel_adds_responses(self):
        g1 = ss([[0.5]], [[1.0]], [[1.0]], dt=1.0)
        g2 = ss([[0.2]], [[1.0]], [[2.0]], dt=1.0)
        summed = parallel(g1, g2)
        z = np.exp(1j * 0.7)
        expected = g1.frequency_response(z) + g2.frequency_response(z)
        assert summed.frequency_response(z) == pytest.approx(expected)

    def test_mixed_dt_rejected(self):
        g1 = ss([[0.5]], [[1.0]], [[1.0]], dt=1.0)
        g2 = ss([[0.5]], [[1.0]], [[1.0]], dt=0.5)
        with pytest.raises(ValueError, match="dt"):
            g1 * g2

    def test_feedback_dc_gain(self):
        # G = 2/(z-0.5); closed loop DC = G/(1+G) at z=1 -> 4/(1+4) = 0.8.
        g = ss([[0.5]], [[1.0]], [[2.0]], dt=1.0)
        closed = feedback(g)
        assert closed.dc_gain()[0, 0] == pytest.approx(0.8)

    def test_feedback_positive_sign(self):
        g = ss([[0.5]], [[1.0]], [[0.2]], dt=1.0)
        closed = feedback(g, sign=+1)
        # G/(1-G) at DC: G(1)=0.4 -> 0.4/0.6
        assert closed.dc_gain()[0, 0] == pytest.approx(0.4 / 0.6)

    def test_append_block_diagonal(self):
        g1 = ss([[0.5]], [[1.0]], [[1.0]], dt=1.0)
        g2 = ss([[0.2]], [[1.0]], [[1.0]], dt=1.0)
        combo = append(g1, g2)
        assert combo.n_inputs == 2
        assert combo.n_outputs == 2
        z = np.exp(1j * 0.4)
        resp = combo.frequency_response(z)
        assert resp[0, 1] == pytest.approx(0.0)
        assert resp[1, 0] == pytest.approx(0.0)

    def test_subsystem_selects_channels(self, stable_discrete_system):
        sub = stable_discrete_system.subsystem(outputs=[0], inputs=[1])
        z = np.exp(1j * 0.2)
        full = stable_discrete_system.frequency_response(z)
        assert sub.frequency_response(z)[0, 0] == pytest.approx(full[0, 1])

    def test_similarity_transform_preserves_response(self, stable_discrete_system, rng):
        T = rng.normal(size=(4, 4)) + 4 * np.eye(4)
        transformed = stable_discrete_system.similarity_transform(T)
        z = np.exp(1j * 0.5)
        assert transformed.frequency_response(z) == pytest.approx(
            stable_discrete_system.frequency_response(z)
        )

    def test_transpose_is_dual(self, stable_discrete_system):
        dual = stable_discrete_system.transpose()
        z = np.exp(1j * 0.1)
        assert dual.frequency_response(z) == pytest.approx(
            stable_discrete_system.frequency_response(z).T
        )


class TestDiscretization:
    def test_zoh_first_order(self):
        # x' = -x + u discretized at dt: Ad = e^-dt, Bd = 1 - e^-dt.
        sys_ = ss([[-1.0]], [[1.0]], [[1.0]])
        disc = sys_.discretize(0.3)
        assert disc.A[0, 0] == pytest.approx(np.exp(-0.3))
        assert disc.B[0, 0] == pytest.approx(1 - np.exp(-0.3))

    def test_zoh_preserves_dc_gain(self, stable_continuous_system):
        disc = stable_continuous_system.discretize(0.1)
        assert disc.dc_gain() == pytest.approx(
            stable_continuous_system.dc_gain(), rel=1e-6
        )

    def test_tustin_preserves_dc_gain(self, stable_continuous_system):
        disc = stable_continuous_system.discretize(0.1, method="tustin")
        assert disc.dc_gain() == pytest.approx(
            stable_continuous_system.dc_gain(), rel=1e-6
        )

    def test_rejects_double_discretization(self):
        sys_ = ss([[0.5]], [[1.0]], [[1.0]], dt=1.0)
        with pytest.raises(ValueError, match="already discrete"):
            sys_.discretize(0.1)
