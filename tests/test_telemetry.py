"""Unit tests for repro.telemetry: registry, tracer, flight recorder, session."""

import json

import numpy as np
import pytest

from repro.telemetry import (
    NULL_SPAN,
    FlightRecorder,
    MetricsRegistry,
    TelemetrySession,
    Tracer,
    activate,
    active_session,
    deactivate,
)
from repro.telemetry.flight import jsonable
from repro.telemetry.tracing import chrome_event


@pytest.fixture(autouse=True)
def _no_global_session():
    """Telemetry tests must not leak a process-wide session."""
    deactivate()
    yield
    deactivate()


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "ops")
        c.inc()
        c.inc(2.5)
        assert reg.value("ops_total") == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("level")
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.value == pytest.approx(3.0)

    def test_histogram_buckets_sum_count(self):
        reg = MetricsRegistry()
        fam = reg.histogram("lat_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 5.0):
            fam.observe(v)
        h = fam._default  # the unlabeled child holds the distribution
        cum = dict(h.cumulative())
        assert cum[0.01] == 1
        assert cum[0.1] == 3
        assert cum[1.0] == 3
        assert cum[float("inf")] == 4
        assert h.count == 4
        assert h.sum == pytest.approx(5.105)
        assert reg.value("lat_seconds") == 4  # histogram value() -> count

    def test_labels_create_independent_children(self):
        reg = MetricsRegistry()
        fam = reg.counter("trips_total", labels=("cause",))
        fam.labels(cause="thermal").inc()
        fam.labels(cause="thermal").inc()
        fam.labels(cause="power").inc()
        assert reg.value("trips_total", cause="thermal") == 2
        assert reg.value("trips_total", cause="power") == 1

    def test_wrong_label_names_raise(self):
        fam = MetricsRegistry().counter("t_total", labels=("cause",))
        with pytest.raises(ValueError):
            fam.labels(kind="x")
        with pytest.raises(ValueError):
            fam.inc()  # labeled family has no unlabeled default

    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("n_total", "help", labels=("k",))
        b = reg.counter("n_total", "other help", labels=("k",))
        assert a is b

    def test_reregistration_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("n_total")
        with pytest.raises(ValueError):
            reg.gauge("n_total")
        with pytest.raises(ValueError):
            reg.counter("n_total", labels=("k",))

    def test_invalid_names_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("1starts_with_digit")

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("trips_total", "trips by cause",
                    labels=("cause",)).labels(cause='weird"cause').inc()
        reg.gauge("exd_proxy").set(1.5)
        h = reg.histogram("step_seconds", buckets=(0.1,))
        h.observe(0.05)
        text = reg.render_prometheus()
        assert "# HELP trips_total trips by cause" in text
        assert "# TYPE trips_total counter" in text
        assert 'trips_total{cause="weird\\"cause"} 1' in text
        assert "exd_proxy 1.5" in text
        assert 'step_seconds_bucket{le="0.1"} 1' in text
        assert 'step_seconds_bucket{le="+Inf"} 1' in text
        assert "step_seconds_sum 0.05" in text
        assert "step_seconds_count 1" in text

    def test_to_dict_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("a_total", labels=("k",)).labels(k="v").inc()
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        blob = json.dumps(reg.to_dict())
        parsed = json.loads(blob)
        assert parsed["a_total"]["values"][0] == {
            "labels": {"k": "v"}, "value": 1.0,
        }
        assert parsed["h_seconds"]["values"][0]["count"] == 1


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_null_span_is_inert(self):
        with NULL_SPAN as s:
            s.set(anything=1)  # must not raise

    def test_in_memory_spans(self):
        tr = Tracer()
        tr.begin_period(board_time=0.5)
        with tr.span("sample", layer="hw") as s:
            s.set(extra=3)
        assert tr.trace_id == 1
        assert tr.span_count == 2  # period.begin instant + the span
        names = [r["name"] for r in tr.spans]
        assert names == ["period.begin", "sample"]
        span = tr.spans[-1]
        assert span["phase"] == "span"
        assert span["trace_id"] == 1
        assert span["dur_us"] >= 0.0
        assert span["layer"] == "hw"
        assert span["extra"] == 3

    def test_trace_ids_advance_per_period(self):
        tr = Tracer()
        for _ in range(3):
            tr.begin_period()
            with tr.span("work"):
                pass
        assert [r["trace_id"] for r in tr.spans] == [1, 2, 3]

    def test_jsonl_and_chrome_files(self, tmp_path):
        jsonl = tmp_path / "spans.jsonl"
        chrome = tmp_path / "trace.json"
        tr = Tracer(jsonl_path=jsonl, chrome_path=chrome)
        tr.begin_period(board_time=0.0)
        with tr.span("optimize"):
            pass
        tr.instant("fault.applied", cat="fault", kind="temp-bias")
        tr.close()
        records = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert [r["name"] for r in records] == [
            "period.begin", "optimize", "fault.applied",
        ]
        events = json.loads(chrome.read_text())  # must be one valid array
        assert isinstance(events, list) and len(events) == 3
        by_name = {e["name"]: e for e in events}
        assert by_name["optimize"]["ph"] == "X"
        assert "dur" in by_name["optimize"]
        assert by_name["fault.applied"]["ph"] == "i"
        assert by_name["fault.applied"]["args"]["kind"] == "temp-bias"

    def test_serialization_is_deferred_until_flush(self, tmp_path):
        jsonl = tmp_path / "spans.jsonl"
        tr = Tracer(jsonl_path=jsonl, flush_every=1000)
        with tr.span("hot"):
            pass
        assert not jsonl.exists()  # hot path only buffers
        tr.flush()
        assert len(jsonl.read_text().splitlines()) == 1
        tr.close()

    def test_flush_every_batches_mid_run(self, tmp_path):
        jsonl = tmp_path / "spans.jsonl"
        tr = Tracer(jsonl_path=jsonl, flush_every=2)
        for _ in range(5):
            tr.instant("tick")
        tr.flush()
        assert len(jsonl.read_text().splitlines()) == 5
        tr.close()

    def test_memory_ring_is_bounded_but_file_is_complete(self, tmp_path):
        jsonl = tmp_path / "spans.jsonl"
        tr = Tracer(jsonl_path=jsonl, keep=4)
        for i in range(10):
            tr.instant(f"e{i}")
        assert len(tr.spans) == 4
        assert tr.span_count == 10
        tr.close()
        assert len(jsonl.read_text().splitlines()) == 10

    def test_chrome_event_conversion(self):
        record = {"name": "n", "cat": "c", "trace_id": 7,
                  "ts_us": 12.0, "dur_us": 3.0, "phase": "span", "k": "v"}
        event = chrome_event(record)
        assert event == {"name": "n", "cat": "c", "ph": "X", "pid": 1,
                         "tid": 1, "ts": 12.0, "dur": 3.0,
                         "args": {"trace_id": 7, "k": "v"}}


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_capacity(self):
        fr = FlightRecorder(capacity=3)
        for i in range(5):
            fr.record({"period": i})
        assert len(fr) == 3
        assert fr.last == {"period": 4}
        payload = fr.dump("test")
        assert [s["period"] for s in payload["snapshots"]] == [2, 3, 4]

    def test_last_is_late_annotatable(self):
        fr = FlightRecorder(capacity=2)
        fr.record({"period": 1})
        fr.last["supervisor_state"] = "DEGRADED"
        assert fr.dump("x")["snapshots"][0]["supervisor_state"] == "DEGRADED"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_dump_files_and_sequence(self, tmp_path):
        fr = FlightRecorder(capacity=2, out_dir=tmp_path)
        fr.record({"period": 1})
        fr.dump("NOMINAL->DEGRADED:thermal", extra={"t": 1.5})
        fr.dump("fault applied")
        assert [p.name for p in fr.dump_paths] == [
            "flight-0000-NOMINAL-DEGRADED-thermal.json",
            "flight-0001-fault-applied.json",
        ]
        payload = json.loads(fr.dump_paths[0].read_text())
        assert payload["reason"] == "NOMINAL->DEGRADED:thermal"
        assert payload["extra"] == {"t": 1.5}
        assert json.loads(fr.dump_paths[1].read_text())["sequence"] == 1

    def test_jsonable_numpy_conversion(self):
        out = jsonable({
            "arr": np.array([1.0, 2.0]),
            "f": np.float64(1.5),
            "nan": float("nan"),
            "i": np.int64(3),
            "b": np.bool_(True),
            "plain_bool": True,
            "none": None,
            "obj": object(),
        })
        assert out["arr"] == [1.0, 2.0]
        assert out["f"] == 1.5
        assert out["nan"] == "nan"  # non-finite floats become strings
        assert out["i"] == 3
        assert out["b"] is True
        assert out["plain_bool"] is True
        assert out["none"] is None
        assert isinstance(out["obj"], str)
        json.dumps(out)  # the whole payload must be serializable


# ----------------------------------------------------------------------
# Session
# ----------------------------------------------------------------------
class TestSession:
    def test_activate_deactivate(self):
        assert active_session() is None
        session = TelemetrySession()
        assert activate(session) is session
        assert active_session() is session
        deactivate()
        assert active_session() is None

    def test_close_auto_deactivates(self):
        session = activate(TelemetrySession())
        session.close()
        assert active_session() is None
        assert session.closed

    def test_close_is_idempotent(self, tmp_path):
        session = TelemetrySession(tmp_path / "t")
        session.close()
        session.close()

    def test_after_close_recording_is_inert(self):
        session = TelemetrySession()
        session.close()
        assert session.span("x") is NULL_SPAN
        session.instant("y")  # no-op, must not raise
        assert session.tracer.span_count == 0

    def test_out_dir_artifacts(self, tmp_path):
        out = tmp_path / "telemetry"
        with TelemetrySession(out) as session:
            session.begin_period(board_time=0.0)
            with session.span("sample"):
                pass
            session.periods.inc()
            session.record_period({"period": 1, "exd": 0.5})
            session.dump_flight("unit-test", extra={"why": "test"})
        for name in ("metrics.prom", "metrics.json", "spans.jsonl",
                     "trace.json"):
            assert (out / name).exists(), name
        assert list(out.glob("flight-*-unit-test.json"))
        prom = (out / "metrics.prom").read_text()
        assert "control_periods_total 1" in prom
        assert 'flight_dumps_total{reason="unit-test"} 1' in prom
        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["control_periods_total"]["values"][0]["value"] == 1.0
        json.loads((out / "trace.json").read_text())

    def test_dump_flight_counts_and_marks_trace(self):
        session = TelemetrySession()
        session.record_period({"period": 1})
        payload = session.dump_flight("reason-x")
        assert payload["snapshots"] == [{"period": 1}]
        assert session.registry.value("flight_dumps_total",
                                      reason="reason-x") == 1
        assert session.tracer.spans[-1]["name"] == "flight.dump"

    def test_session_period_passthrough(self):
        session = TelemetrySession()
        assert session.period == 0
        session.begin_period()
        assert session.period == 1
