"""Tests for worst-case uncertainty analysis."""

import numpy as np
import pytest

from repro.lti import StateSpace, static_gain
from repro.robust import (
    BlockStructure,
    UncertaintyBlock,
    destabilizing_radius,
    mu_bounds_over_frequency,
    worst_case_delta,
    worst_case_gain,
)


@pytest.fixture
def siso_structure():
    return BlockStructure([UncertaintyBlock("full", 1, 1)])


class TestWorstCaseDelta:
    def test_scalar_case_matches_analysis(self, siso_structure):
        """For M = [[m11, m12], [m21, m22]], the worst |Delta|<=r gain is
        |m22| + r|m12 m21| / (1 - r|m11|) (achieved with an aligned phase)."""
        M = np.array([[0.4, 0.8], [0.5, 1.0]], dtype=complex)
        delta, gain = worst_case_delta(M, siso_structure, n_d=1, n_f=1,
                                       radius=0.5, samples=200, seed=1)
        expected = 1.0 + 0.5 * 0.8 * 0.5 / (1 - 0.5 * 0.4)
        assert gain == pytest.approx(expected, rel=0.02)
        assert abs(delta[0, 0]) <= 0.5 + 1e-9

    def test_zero_coupling_means_no_degradation(self, siso_structure):
        M = np.array([[0.4, 0.0], [0.0, 2.0]], dtype=complex)
        _, gain = worst_case_delta(M, siso_structure, n_d=1, n_f=1,
                                   radius=0.9, samples=50)
        assert gain == pytest.approx(2.0, rel=1e-6)

    def test_delta_respects_block_norms(self):
        structure = BlockStructure([
            UncertaintyBlock("full", 2, 2),
            UncertaintyBlock("full", 1, 1),
        ])
        rng = np.random.default_rng(3)
        M = rng.normal(size=(6, 6)) * 0.3
        delta, _ = worst_case_delta(M, structure, n_d=3, n_f=3, radius=0.7,
                                    samples=50)
        assert np.linalg.svd(delta[:2, :2], compute_uv=False)[0] <= 0.7 + 1e-6
        assert abs(delta[2, 2]) <= 0.7 + 1e-6


class TestWorstCaseGain:
    def test_degradation_grows_with_radius(self, siso_structure):
        # Loop: f = 0.6/(z-0.5) d + w coupling; bigger Delta radius -> worse.
        channel = StateSpace(
            [[0.5]], [[0.6, 0.6]], [[1.0], [1.0]], [[0.0, 0.0], [0.0, 1.0]],
            dt=1.0,
        )
        small = worst_case_gain(channel, siso_structure, n_d=1, n_f=1,
                                radius=0.2, points=8, samples=25)
        large = worst_case_gain(channel, siso_structure, n_d=1, n_f=1,
                                radius=0.6, points=8, samples=25)
        assert large.worst_gain >= small.worst_gain - 1e-9
        assert small.worst_gain >= small.nominal_peak - 1e-9
        assert "worst-case gain" in large.summary()


class TestDestabilizingRadius:
    def test_radius_is_inverse_mu(self, siso_structure):
        channel = StateSpace([[0.5]], [[1.0]], [[2.0]], [[0.0]], dt=1.0)
        radius, analysis, certified = destabilizing_radius(
            channel, siso_structure, points=12, verify=False
        )
        assert radius == pytest.approx(1.0 / analysis.peak_upper)
        # |2/(z-0.5)| peaks at 4 -> destabilizing radius 0.25.
        assert radius == pytest.approx(0.25, rel=0.05)

    def test_certified_instability_near_radius(self, siso_structure):
        channel = StateSpace([[0.5]], [[1.0]], [[2.0]], [[0.0]], dt=1.0)
        radius, _, certified = destabilizing_radius(
            channel, siso_structure, points=12, verify=True
        )
        # A real constant Delta certificate should appear within a small
        # multiple of the theoretical radius.
        assert certified is not None
        assert certified <= 4.0

    def test_small_loop_gain_certifies_nothing(self, siso_structure):
        channel = StateSpace([[0.2]], [[0.05]], [[0.05]], [[0.0]], dt=1.0)
        radius, analysis, certified = destabilizing_radius(
            channel, siso_structure, points=10, verify=True
        )
        assert radius > 100.0  # mu tiny -> huge tolerated perturbations
