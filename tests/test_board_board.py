"""Integration tests for the full board simulator."""

import numpy as np
import pytest

from repro.board import BIG, LITTLE, Board, default_xu3_spec, plan_placement, spare_capacity
from repro.workloads import Application, Phase, Thread, make_application


@pytest.fixture
def small_app():
    return Application("tiny", [Phase("p", 4, 8.0, mpki=0.5)])


@pytest.fixture
def board(small_app):
    return Board(small_app, seed=1)


class TestPlacement:
    def test_plan_respects_thread_split(self):
        threads = [Thread(i, "a") for i in range(8)]
        assignment = plan_placement(threads, 5, 2, 1, 4, 4)
        n_big = sum(len(c) for c in assignment[BIG])
        assert n_big == 5
        assert sum(len(c) for c in assignment[LITTLE]) == 3

    def test_plan_packs_by_tpc(self):
        threads = [Thread(i, "a") for i in range(4)]
        assignment = plan_placement(threads, 4, 2, 1, 4, 4)
        busy = [c for c in assignment[BIG] if c]
        assert len(busy) == 2  # 4 threads at 2 per core

    def test_plan_caps_by_powered_cores(self):
        threads = [Thread(i, "a") for i in range(6)]
        assignment = plan_placement(threads, 6, 1, 1, 2, 4)
        busy = [c for c in assignment[BIG] if c]
        assert len(busy) == 2  # only two cores powered

    def test_spare_capacity_formula(self):
        # 2 busy of 4 on, 3 threads: SC = 2 - (3 - 4) = 3.
        assert spare_capacity(3, 2, 4) == 3
        # Overloaded: 8 threads, 4 on, all busy: SC = 0 - 4 = -4.
        assert spare_capacity(8, 4, 4) == -4


class TestBoardActuation:
    def test_frequency_snapping(self, board):
        board.set_cluster_frequency(BIG, 1.44)
        assert board.clusters[BIG].frequency == pytest.approx(1.4)
        board.set_cluster_frequency(BIG, 99.0)
        assert board.clusters[BIG].frequency == pytest.approx(2.0)

    def test_hotplug_clamps_and_stalls(self, board):
        board.set_active_cores(BIG, 9)
        assert board.clusters[BIG].cores_on == 4
        board.set_active_cores(BIG, 2)
        assert board.clusters[BIG].cores_on == 2
        assert board.clusters[BIG].pending_hotplug_stall > 0

    def test_hotplug_repacks_threads(self, board):
        board.set_placement_knobs(4, 1, 1)
        board.set_active_cores(BIG, 1)
        threads_on_live = board.placement.assignment[BIG][0]
        assert len(threads_on_live) == 4

    def test_placement_knobs(self, board):
        board.set_placement_knobs(3, 1.0, 1.0)
        obs = board.observe_placement()
        assert obs[BIG]["n_threads"] == 3
        assert obs[LITTLE]["n_threads"] == 1


class TestBoardExecution:
    def test_app_completes_and_energy_accumulates(self, board):
        board.run(max_time=300.0)
        assert board.done
        assert board.energy > 0
        assert board.time < 300.0

    def test_energy_equals_power_integral(self, small_app):
        board = Board(small_app, seed=1)
        for _ in range(100):
            board.step()
        trace = board.trace.as_arrays()
        total = (trace["power_big"] + trace["power_little"]
                 + board.spec.board_static_power)
        assert board.energy == pytest.approx(
            float(np.sum(total)) * board.spec.sim_dt, rel=1e-6
        )

    def test_more_frequency_is_faster(self):
        """Below the emergency envelope, higher frequency finishes sooner."""
        def run_at(freq):
            app = Application("t", [Phase("p", 2, 4.0, mpki=0.5)])
            board = Board(app, seed=1, record=False)
            board.set_cluster_frequency(BIG, freq)
            board.set_cluster_frequency(LITTLE, 0.2)
            board.set_placement_knobs(2, 1, 1)
            board.run(max_time=600.0)
            assert board.emergency.state.trip_count == 0
            return board.time

        assert run_at(1.6) < run_at(0.8)

    def test_deterministic_given_seed(self, small_app):
        def run():
            app = Application("t", [Phase("p", 4, 8.0, mpki=0.5)])
            board = Board(app, seed=42)
            board.run(max_time=300.0)
            return board.time, board.energy

        assert run() == run()

    def test_phase_transition_changes_thread_count(self):
        app = Application("t", [
            Phase("serial", 1, 1.0, mpki=0.5),
            Phase("parallel", 6, 3.0, mpki=0.5),
        ])
        board = Board(app, seed=1, record=False)
        counts = set()
        while not board.done and board.time < 300:
            board.step()
            counts.add(board.runnable_thread_count())
        assert 1 in counts
        assert 6 in counts

    def test_emergency_engages_flat_out(self):
        """Running everything at max must trip the stock firmware."""
        app = Application("hot", [Phase("p", 8, 60.0, mpki=0.3)])
        board = Board(app, seed=1, record=False)
        board.set_placement_knobs(8, 2, 1)
        board.run(duration=30.0)
        assert board.emergency.state.trip_count > 0

    def test_mix_runs_concurrently(self):
        apps = [
            Application("a", [Phase("p", 2, 3.0)]),
            Application("b", [Phase("p", 2, 3.0)]),
        ]
        board = Board(apps, seed=1, record=False)
        board.run(max_time=300.0)
        assert board.done
        assert all(a.done for a in apps)


class TestWorkloadLibrary:
    def test_all_programs_instantiable(self):
        from repro.workloads import program_names
        for name in program_names("evaluation") + program_names("training"):
            app = make_application(name)
            assert not app.done
            assert app.total_remaining() > 0

    def test_unknown_program_raises(self):
        with pytest.raises(KeyError):
            make_application("doom")

    def test_blackscholes_has_serial_ramp(self):
        app = make_application("blackscholes")
        assert app.phases[0].n_threads == 1
        assert app.phases[1].n_threads == 8

    def test_mcf_is_memory_bound(self):
        app = make_application("mcf")
        assert app.current_phase.mpki > 10

    def test_mixes(self):
        from repro.workloads import make_mix, mix_names
        assert set(mix_names()) == {"blmc", "stga", "blst", "mcga"}
        members = make_mix("blmc")
        assert len(members) == 2
        for app in members:
            assert app.current_phase.n_threads <= 4

    def test_shared_pool_vs_barrier(self):
        pool = Application("p", [Phase("x", 2, 1.0, barrier=False)])
        barrier = Application("b", [Phase("x", 2, 1.0, barrier=True)])
        t_pool = pool.runnable_threads()[0]
        pool.execute(t_pool, 0.9, now=1.0)
        assert pool.pool_remaining == pytest.approx(0.1)
        t_bar = barrier.runnable_threads()[0]
        barrier.execute(t_bar, 0.5, now=1.0)  # own share exhausted
        assert t_bar.remaining == pytest.approx(0.0)
        assert not barrier.done
        assert len(barrier.runnable_threads()) == 1  # the other thread


class TestActuationValidation:
    """Out-of-range / non-finite commands clamp or drop, and are counted."""

    def test_out_of_range_frequency_clamps_and_counts(self, board):
        board.set_cluster_frequency(BIG, 99.0)
        assert board.clusters[BIG].frequency == pytest.approx(2.0)
        assert board.rejected_actuations["frequency"] == 1
        board.set_cluster_frequency(BIG, -1.0)
        assert board.clusters[BIG].frequency == pytest.approx(0.2)
        assert board.rejected_actuations["frequency"] == 2

    def test_non_finite_frequency_keeps_previous_setting(self, board):
        board.set_cluster_frequency(BIG, 1.2)
        for bad in (float("nan"), float("inf"), "fast"):
            board.set_cluster_frequency(BIG, bad)
            assert board.clusters[BIG].frequency == pytest.approx(1.2)
        assert board.rejected_actuations["frequency"] == 3

    def test_out_of_range_cores_clamp_and_count(self, board):
        board.set_active_cores(BIG, 9)
        assert board.clusters[BIG].cores_on == 4
        board.set_active_cores(BIG, 0)
        assert board.clusters[BIG].cores_on == 1
        assert board.rejected_actuations["cores"] == 2

    def test_non_finite_cores_keep_previous_setting(self, board):
        board.set_active_cores(BIG, 3)
        board.set_active_cores(BIG, float("nan"))
        assert board.clusters[BIG].cores_on == 3
        assert board.rejected_actuations["cores"] == 1

    def test_placement_knob_validation(self, board):
        before = board.observe_placement()[BIG]["n_threads"]
        # Non-finite: the whole call is dropped.
        board.set_placement_knobs(float("nan"), 1.0, 1.0)
        assert board.observe_placement()[BIG]["n_threads"] == before
        assert board.rejected_actuations["placement"] == 1
        # Out-of-range knobs clamp but the (clamped) call still applies.
        board.set_placement_knobs(999, 1.0, 1.0)
        assert board.observe_placement()[BIG]["n_threads"] == 4
        assert board.rejected_actuations["placement"] == 2

    def test_legal_commands_are_not_counted(self, board):
        board.set_cluster_frequency(BIG, 1.0)
        board.set_active_cores(BIG, 2)
        board.set_placement_knobs(2, 1.0, 1.0)
        assert board.rejected_actuations == {
            "frequency": 0, "cores": 0, "placement": 0,
        }
