"""End-to-end tests for the resilience experiment (faults + supervisor)."""

import pytest

from repro.experiments import resilience
from repro.experiments.schemes import MONOLITHIC_LQG, YUKTA_HW_SSV_OS_SSV
from repro.faults import heatsink_detachment


class TestSupervisedRun:
    def test_monolithic_scheme_rejected(self, design_context):
        with pytest.raises(ValueError):
            resilience.supervised_run(design_context, MONOLITHIC_LQG)


@pytest.mark.slow
class TestEndToEnd:
    """The acceptance scenario: heatsink detachment at t=60 s.

    The permanent detachment must be detected within a bounded number of
    control periods and the run must stay inside the emergency envelope;
    the transient variant must additionally re-promote the SSV controllers
    to NOMINAL before the run completes.
    """

    def test_permanent_heatsink_detach(self, design_context):
        run = resilience.supervised_run(
            design_context,
            YUKTA_HW_SSV_OS_SSV,
            campaign=heatsink_detachment(start=60.0),
        )
        supervisor = run.supervisor
        assert supervisor.tripped
        # Detection within 90 control periods (45 s) of fault onset: the
        # x2 detachment is thermally absorbable, so the (slow) deviation
        # monitor is the detecting one.
        latency = (supervisor.detection_time - 60.0) / design_context.spec.control_period
        assert 0 <= latency <= 90
        assert supervisor.time_degraded > 0.0
        # The safe envelope held: bounded 79 degC violation, and never into
        # emergency territory for long (the trip point sits at 85 degC).
        assert run.temp_violation_time < 120.0

    def test_transient_heatsink_detach_recovers(self, design_context):
        run = resilience.supervised_run(
            design_context,
            YUKTA_HW_SSV_OS_SSV,
            campaign=heatsink_detachment(start=60.0, duration=30.0,
                                         resistance_factor=3.0),
        )
        supervisor = run.supervisor
        assert supervisor.tripped
        # The x3 detachment forces the stock firmware to intervene, so the
        # fast override path detects it within ~20 periods.
        latency = (supervisor.detection_time - 60.0) / design_context.spec.control_period
        assert 0 <= latency <= 20
        # After the fault reverts the supervisor re-promotes the primary
        # SSV controllers before the run completes.
        assert supervisor.recovered
        assert supervisor.state_history[-1][1] == "NOMINAL"

    def test_quick_matrix_renders(self, design_context):
        result = resilience.run(design_context, quick=True)
        text = result.render()
        assert "heatsink-detach" in text
        assert "yukta-hwssv-osssv" in text
        # The false-positive guard: neither scheme trips fault-free.
        for base in result.baselines.values():
            assert not base["false_trip"]
        # The SSV scheme detects every quick-matrix fault.
        for row in result.rows:
            if row.scheme == YUKTA_HW_SSV_OS_SSV:
                assert row.detected
                assert row.detect_latency >= 0
