"""Tests for the fixed-point implementation (Sec. VI-D) and Table I taxonomy."""

import numpy as np
import pytest

from repro.core import (
    FixedPointController,
    YUKTA_CHOICE,
    TAXONOMY_TABLE,
    implementation_cost,
)
from repro.lti import ss


class TestImplementationCost:
    def test_paper_configuration(self):
        """N=20, I=4, O+E=7 lands at the paper's ~700 MACs / ~2.6 KB."""
        cost = implementation_cost(20, 4, 7)
        assert cost.macs == 20 * 20 + 20 * 7 + 4 * 20 + 4 * 7
        assert 600 <= cost.macs <= 800
        assert 2.4 <= cost.storage_bytes / 1024 <= 2.8

    def test_total_counts_adds(self):
        cost = implementation_cost(2, 1, 1)
        assert cost.total_operations == cost.multiplies + cost.additions

    def test_summary_mentions_kb(self):
        assert "KB" in implementation_cost(20, 4, 7).summary()


class TestFixedPointController:
    @pytest.fixture
    def controller(self):
        return ss(
            [[0.5, 0.1], [0.0, 0.3]],
            [[1.0, 0.2], [0.1, 0.4]],
            [[0.2, 0.6]],
            [[0.05, 0.1]],
            dt=0.5,
        )

    def test_matches_float_reference(self, controller, rng):
        fixed = FixedPointController(controller, frac_bits=20)
        dy = rng.uniform(-1, 1, size=(100, 2))
        error = fixed.max_output_error(dy)
        assert error < 1e-3

    def test_coarser_format_is_less_accurate(self, controller, rng):
        dy = rng.uniform(-1, 1, size=(100, 2))
        fine = FixedPointController(controller, frac_bits=24).max_output_error(dy)
        coarse = FixedPointController(controller, frac_bits=8).max_output_error(dy)
        assert coarse > fine

    def test_counts_operations(self, controller):
        fixed = FixedPointController(controller)
        fixed.step(np.zeros(2))
        fixed.step(np.zeros(2))
        assert fixed.operations_executed == 2 * fixed.cost.total_operations

    def test_rejects_continuous(self):
        cont = ss([[-1.0]], [[1.0]], [[1.0]])
        with pytest.raises(ValueError, match="discrete"):
            FixedPointController(cont)

    def test_rejects_bad_format(self, controller):
        with pytest.raises(ValueError):
            FixedPointController(controller, frac_bits=32, word_bits=32)


class TestTaxonomy:
    def test_yukta_choice_is_the_paper_selection(self):
        assert YUKTA_CHOICE.modeling.value.startswith("Black Box")
        assert YUKTA_CHOICE.mode.value == "MIMO"
        assert YUKTA_CHOICE.organization.value == "Collaborative"
        assert YUKTA_CHOICE.approach.value == "Robust"
        assert YUKTA_CHOICE.controller_type.value == "SSV"

    def test_table_covers_all_dimensions(self):
        assert set(TAXONOMY_TABLE) == {
            "Modeling", "Mode", "Organization", "Approach", "Type"
        }

    def test_choice_members_listed_in_table(self):
        assert YUKTA_CHOICE.mode.value in TAXONOMY_TABLE["Mode"]
        assert YUKTA_CHOICE.controller_type.value in TAXONOMY_TABLE["Type"]
