"""Tests for the runtime controller wrapper and the ExD optimizer."""

import numpy as np
import pytest

from repro.core import ExDOptimizer, RuntimeController, TargetChannel, exd_metric
from repro.lti import ss
from repro.signals import QuantizedRange


def _simple_runtime_controller(gain=0.5, limit_mask=None, dither=None):
    """A one-state proportional-ish controller for wrapper testing."""
    sm = ss([[0.0]], [[1.0, 0.0]], [[gain]], [[gain, 0.0]], dt=0.5)
    return RuntimeController(
        name="toy",
        state_machine=sm,
        input_ranges=[QuantizedRange(0.2, 2.0, step=0.1)],
        input_offsets=np.array([1.1]),
        input_scales=np.array([0.9]),
        output_offsets=np.array([2.0]),
        output_scales=np.array([4.0]),
        external_offsets=np.array([0.0]),
        external_scales=np.array([1.0]),
        bound_fractions=np.array([0.2]),
        targets=np.array([3.0]),
        limit_mask=np.array(limit_mask) if limit_mask is not None else None,
        dither_mask=np.array(dither) if dither is not None else None,
    )


class TestRuntimeController:
    def test_snaps_to_allowed_levels(self):
        ctrl = _simple_runtime_controller()
        u = ctrl.step([2.0], [0.0])
        assert ctrl.input_ranges[0].contains(u[0])

    def test_positive_error_raises_input(self):
        ctrl = _simple_runtime_controller(gain=2.0)
        u_low = ctrl.step([2.0], [0.0])  # y at target-1 -> push up
        ctrl.reset()
        u_high = ctrl.step([4.5], [0.0])  # y above target -> push down
        assert u_low[0] > u_high[0]

    def test_limit_mask_suppresses_upward_pull(self):
        plain = _simple_runtime_controller(gain=2.0)
        limited = _simple_runtime_controller(gain=2.0, limit_mask=[True])
        # Output far below target: plain pushes hard, limited barely.
        u_plain = plain.step([0.5], [0.0])
        u_limited = limited.step([0.5], [0.0])
        assert u_plain[0] > u_limited[0]

    def test_guardband_exhaustion_flag(self):
        ctrl = _simple_runtime_controller(gain=0.0)
        # Only critical (tight-bound) outputs participate in the monitor.
        ctrl.bound_fractions = np.array([0.1])
        ctrl.set_targets([30.0])  # hopeless target
        for _ in range(10):
            ctrl.step([2.0], [0.0])
        assert ctrl.guardband_exhausted

    def test_non_critical_outputs_never_flag(self):
        ctrl = _simple_runtime_controller(gain=0.0)
        ctrl.bound_fractions = np.array([0.2])  # performance-tier bound
        ctrl.set_targets([30.0])
        for _ in range(10):
            ctrl.step([2.0], [0.0])
        assert not ctrl.guardband_exhausted

    def test_reset_clears_state(self):
        ctrl = _simple_runtime_controller()
        ctrl.step([4.0], [0.0])
        ctrl.reset()
        assert np.all(ctrl.state == 0.0)
        assert not ctrl.guardband_exhausted

    def test_dither_realizes_subnotch_average(self):
        ctrl = _simple_runtime_controller(gain=1.0, dither=[True])
        ctrl.set_targets([2.4])  # small persistent error
        values = [ctrl.step([2.0], [0.0])[0] for _ in range(50)]
        # With dithering, the average should sit between snap levels.
        assert len(set(values[10:])) >= 2 or np.std(values[10:]) == 0.0


class TestExDMetric:
    def test_formula(self):
        assert exd_metric(2.0, 4.0) == pytest.approx(0.125)

    def test_guards_zero_perf(self):
        assert np.isfinite(exd_metric(2.0, 0.0))


class TestTargetChannel:
    def test_role_defaults(self):
        perf = TargetChannel("p", 1.0, 0.0, 10.0, role="performance")
        assert perf.forward_step > perf.backward_step
        fixed = TargetChannel("t", 70.0, 0.0, 80.0, role="fixed")
        assert fixed.forward_step == 0.0

    def test_clamp(self):
        ch = TargetChannel("p", 1.0, 0.0, 2.0)
        assert ch.clamp(5.0) == 2.0
        assert ch.clamp(-5.0) == 0.0

    def test_rejects_inverted_envelope(self):
        with pytest.raises(ValueError):
            TargetChannel("p", 1.0, 2.0, 1.0)


class TestExDOptimizer:
    def _optimizer(self, settle=1):
        return ExDOptimizer(
            [
                TargetChannel("perf", 2.0, 0.0, 10.0, role="performance"),
                TargetChannel("power", 1.0, 0.0, 4.0, role="power"),
                TargetChannel("temp", 70.0, 0.0, 80.0, role="fixed"),
            ],
            settle_periods=settle,
        )

    def test_fixed_channel_never_moves(self):
        opt = self._optimizer()
        for k in range(20):
            targets = opt.update(1.0 / (k + 1), outputs=[2.0, 1.0, 60.0])
        assert targets[2] == 70.0

    def test_improving_exd_walks_up(self):
        opt = self._optimizer()
        exd = 1.0
        outputs = np.array([2.0, 1.0, 60.0])
        for _ in range(12):
            targets = opt.update(exd, outputs=outputs)
            exd *= 0.9  # keep improving
            outputs = outputs + 0.05
        assert targets[0] > outputs[0]  # leads the observation

    def test_worsening_exd_reverts(self):
        opt = self._optimizer()
        opt.update(1.0, outputs=[2.0, 1.0, 60.0])
        t_after_first_move = opt.targets.copy()
        opt.update(5.0, outputs=[2.0, 1.0, 60.0])  # much worse: revert+flip
        assert opt._direction == -1.0

    def test_anchoring_keeps_targets_near_outputs(self):
        opt = self._optimizer()
        for _ in range(30):
            targets = opt.update(1.0, outputs=[2.0, 1.0, 60.0])
        # Anchored moves can never run far from the observation.
        assert abs(targets[0] - 2.0) < 6.0

    def test_streak_growth_capped(self):
        opt = self._optimizer()
        exd = 1.0
        for _ in range(40):
            opt.update(exd, outputs=[2.0, 1.0, 60.0])
            exd *= 0.99
        assert opt._growth() <= ExDOptimizer.MAX_GROWTH

    def test_settle_period_gates_moves(self):
        opt = self._optimizer(settle=4)
        before = opt.targets.copy()
        opt.update(1.0, outputs=[2.0, 1.0, 60.0])
        assert np.all(opt.targets == before)  # no move yet

    def test_reset(self):
        opt = self._optimizer()
        for _ in range(5):
            opt.update(1.0, outputs=[2.0, 1.0, 60.0])
        opt.reset()
        assert opt.moves == 0
        assert opt.targets[0] == 2.0
