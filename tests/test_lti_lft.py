"""Tests for linear fractional transformations."""

import numpy as np
import pytest

from repro.lti import (
    PartitionedSystem,
    StateSpace,
    lft_lower,
    lft_upper,
    matrix_lft_lower,
    matrix_lft_upper,
    ss,
    static_gain,
)


def _random_partitioned(rng, n=3, n_w=2, n_z=2, n_u=1, n_y=1, dt=1.0):
    A = rng.normal(size=(n, n))
    A *= 0.7 / max(np.max(np.abs(np.linalg.eigvals(A))), 1e-9)
    B = rng.normal(size=(n, n_w + n_u))
    C = rng.normal(size=(n_z + n_y, n))
    D = np.zeros((n_z + n_y, n_w + n_u))
    D[:n_z, :n_w] = rng.normal(size=(n_z, n_w))
    return PartitionedSystem(StateSpace(A, B, C, D, dt=dt), n_w=n_w, n_z=n_z)


class TestPartition:
    def test_blocks_shapes(self, rng):
        plant = _random_partitioned(rng)
        A, B1, B2, C1, C2, D11, D12, D21, D22 = plant.blocks()
        assert B1.shape == (3, 2)
        assert B2.shape == (3, 1)
        assert C1.shape == (2, 3)
        assert C2.shape == (1, 3)
        assert D11.shape == (2, 2)

    def test_rejects_bad_partition(self, rng):
        plant = _random_partitioned(rng)
        with pytest.raises(ValueError):
            PartitionedSystem(plant.system, n_w=99, n_z=1)


class TestLowerLFT:
    def test_static_case_matches_formula(self, rng):
        # Static plant, static controller: closed form available.
        M = rng.normal(size=(3, 3)) * 0.3
        K = np.array([[0.4]])
        plant = PartitionedSystem(static_gain(M, dt=1.0), n_w=2, n_z=2)
        controller = static_gain(K, dt=1.0)
        closed = lft_lower(plant, controller)
        expected = matrix_lft_lower(M, K, n_w=2, n_z=2)
        assert closed.dc_gain() == pytest.approx(expected)

    def test_dimensions(self, rng):
        plant = _random_partitioned(rng)
        controller = ss([[0.3]], [[1.0]], [[0.5]], dt=1.0)
        closed = lft_lower(plant, controller)
        assert closed.n_inputs == plant.n_w
        assert closed.n_outputs == plant.n_z

    def test_rejects_dim_mismatch(self, rng):
        plant = _random_partitioned(rng)
        controller = ss([[0.3]], np.ones((1, 2)), np.ones((2, 1)), dt=1.0)
        with pytest.raises(ValueError):
            lft_lower(plant, controller)

    def test_frequency_response_consistency(self, rng):
        """F_l at each frequency equals the matrix LFT of the responses."""
        plant = _random_partitioned(rng)
        controller = ss([[0.2]], [[1.0]], [[0.7]], [[0.1]], dt=1.0)
        closed = lft_lower(plant, controller)
        z = np.exp(1j * 0.4)
        P = plant.system.frequency_response(z)
        K = controller.frequency_response(z)
        expected = matrix_lft_lower(P, K, n_w=plant.n_w, n_z=plant.n_z)
        assert closed.frequency_response(z) == pytest.approx(expected)


class TestUpperLFT:
    def test_matrix_upper_identity_delta(self, rng):
        M = rng.normal(size=(4, 4)) * 0.2
        Delta = np.zeros((2, 2))
        # Zero perturbation: F_u = M22.
        result = matrix_lft_upper(M, Delta, n_d=2, n_f=2)
        assert result == pytest.approx(M[2:, 2:])

    def test_system_upper_consistency(self, rng):
        plant = _random_partitioned(rng)
        delta = static_gain([[0.3, 0.0], [0.0, -0.2]], dt=1.0)
        closed = lft_upper(plant, delta)
        z = np.exp(1j * 0.6)
        P = plant.system.frequency_response(z)
        expected = matrix_lft_upper(P, delta.D, n_d=plant.n_w, n_f=plant.n_z)
        assert closed.frequency_response(z) == pytest.approx(expected)
