"""Tests for the coordination-channel ablation machinery."""

import numpy as np
import pytest

from repro.experiments.ablation import FrozenExternalsController


class _SpyController:
    def __init__(self):
        self.external_offsets = np.array([4.0, 2.5, 2.5])
        self.targets = np.zeros(3)
        self.seen = []
        self.guardband_exhausted = False

    def set_targets(self, targets):
        self.targets = np.asarray(targets, dtype=float)

    def reset(self):
        self.seen.clear()

    def step(self, outputs, externals):
        self.seen.append(np.asarray(externals, dtype=float).copy())
        return [1.0, 2.0, 3.0]


class TestFrozenExternals:
    def test_externals_replaced_with_offsets(self):
        spy = _SpyController()
        frozen = FrozenExternalsController(spy)
        frozen.step([0.0, 0.0, 0.0], [9.0, 9.0, 9.0])
        assert spy.seen[-1] == pytest.approx([4.0, 2.5, 2.5])

    def test_actuation_passed_through(self):
        frozen = FrozenExternalsController(_SpyController())
        assert frozen.step([0, 0, 0], [1, 1, 1]) == [1.0, 2.0, 3.0]

    def test_targets_and_reset_delegate(self):
        spy = _SpyController()
        frozen = FrozenExternalsController(spy)
        frozen.set_targets([1.0, 2.0, 3.0])
        assert spy.targets == pytest.approx([1.0, 2.0, 3.0])
        frozen.step([0, 0, 0], [1, 1, 1])
        frozen.reset()
        assert spy.seen == []

    def test_exhaustion_flag_round_trips(self):
        spy = _SpyController()
        frozen = FrozenExternalsController(spy)
        assert not frozen.guardband_exhausted
        frozen.guardband_exhausted = True
        assert spy.guardband_exhausted


@pytest.mark.slow
class TestAblationRun:
    def test_single_workload(self, design_context):
        from repro.experiments import ablation

        result = ablation.run(design_context, workloads=("h264ref",))
        assert 0.3 < result.exd_ratio["h264ref"] < 3.0
        assert "coordination channel" in result.render()
