"""The lockstep board bank: bit-exactness, fallback, and integration.

Every test here enforces the same contract: a :class:`BoardBank` advances
each of its boards *bit-identically* to stepping that board alone —
including traces, sensor windows, emergency-firmware timers, application
progress, and the temperature-sensor RNG stream — whatever mix of
vectorized lockstep, mid-window fallback, and scalar (hooked) boards the
run goes through.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.board import BIG, LITTLE, Board, BoardBank
from repro.board.cores import _sum_small
from repro.board.specs import default_xu3_spec
from repro.verify.oracles import _actuation_schedule
from repro.workloads import make_application, make_mix

from .test_properties import board_specs


# ---------------------------------------------------------------------------
# The n<8 reduction rule (pinned here as promised by _sum_small's docstring)
# ---------------------------------------------------------------------------
class TestSumSmall:
    def test_matches_np_sum_bit_exactly(self):
        """_sum_small must reproduce np.sum bit-for-bit at every length.

        Below numpy's 8-element pairwise/unrolled threshold np.sum
        accumulates left to right, so the helper may (cheaply) use a plain
        Python loop there; at >= 8 it must defer to np.sum itself to keep
        the historical bit pattern.
        """
        rng = np.random.default_rng(42)
        for n in range(0, 16):
            for _ in range(20):
                values = list(
                    rng.uniform(0.01, 3.0, size=n)
                    * 10.0 ** rng.integers(-8, 8)
                )
                assert _sum_small(values) == float(np.sum(values))

    def test_sequential_below_eight(self):
        """For n < 8 the helper is exactly scalar left-to-right addition —
        the association the bank's fast paths rely on."""
        rng = np.random.default_rng(7)
        for n in range(0, 8):
            for _ in range(50):
                values = list(
                    rng.uniform(0.01, 3.0, size=n)
                    * 10.0 ** rng.integers(-12, 12)
                )
                acc = 0.0
                for v in values:
                    acc += v
                assert _sum_small(values) == acc


# ---------------------------------------------------------------------------
# Bit-identity helpers
# ---------------------------------------------------------------------------
def _assert_boards_identical(a, b, label=""):
    assert a.time == b.time, f"{label} time"
    assert a.energy == b.energy, f"{label} energy"
    assert a.thermal.temperature == b.thermal.temperature, f"{label} temp"
    assert a.temp_sensor._last == b.temp_sensor._last, f"{label} temp sensor"
    assert (
        a.temp_sensor._rng.bit_generator.state
        == b.temp_sensor._rng.bit_generator.state
    ), f"{label} rng stream"
    for name in (BIG, LITTLE):
        sa, sb = a.power_sensors[name], b.power_sensors[name]
        assert sa._accumulated == sb._accumulated, f"{label} {name} acc"
        assert sa._elapsed == sb._elapsed, f"{label} {name} elapsed"
        assert sa._latched == sb._latched, f"{label} {name} latched"
        assert (
            a.perf_counters[name].total_giga == b.perf_counters[name].total_giga
        ), f"{label} {name} instructions"
        assert (
            a.emergency._under_power_time[name]
            == b.emergency._under_power_time[name]
        ), f"{label} {name} under clock"
        assert (
            a.emergency._over_power_time[name]
            == b.emergency._over_power_time[name]
        ), f"{label} {name} over clock"
    ea, eb = a.emergency.state, b.emergency.state
    assert ea.trip_count == eb.trip_count, f"{label} trips"
    assert ea.thermal_throttled == eb.thermal_throttled, f"{label} th"
    assert ea.power_throttled == eb.power_throttled, f"{label} pth"
    assert ea.throttle_time == eb.throttle_time, f"{label} throttle time"
    for app_a, app_b in zip(a.applications, b.applications):
        assert app_a.done == app_b.done, f"{label} app done"
        assert (
            app_a.completed_instructions == app_b.completed_instructions
        ), f"{label} app progress"
        assert app_a.phase_index == app_b.phase_index, f"{label} app phase"
        assert app_a.finish_time == app_b.finish_time, f"{label} finish"
    if a.trace is not None:
        ta, tb = a.trace.as_arrays(), b.trace.as_arrays()
        assert sorted(ta) == sorted(tb), f"{label} trace signals"
        for signal in ta:
            assert np.array_equal(
                np.asarray(ta[signal]), np.asarray(tb[signal])
            ), f"{label} trace {signal}"


def _actuate(board, command):
    board.set_cluster_frequency(BIG, command["freq_big"])
    board.set_cluster_frequency(LITTLE, command["freq_little"])
    board.set_active_cores(BIG, command["cores_big"])
    board.set_active_cores(LITTLE, command["cores_little"])
    board.set_placement_knobs(*command["placement"])


def _run_pair(spec, workloads, schedules, periods, record=True,
              reference_fast_path=True, seed0=11):
    """Drive a bank and per-board references through identical schedules."""
    def make(k):
        w = workloads[k]
        apps = make_mix(w[4:]) if w.startswith("mix:") else make_application(w)
        return Board(apps, spec=spec, seed=seed0 + k, record=record,
                     telemetry=None)

    banked = [make(k) for k in range(len(workloads))]
    bank = BoardBank(banked, telemetry=None)
    for p in range(periods):
        live = [k for k in range(len(banked)) if not banked[k].done]
        if not live:
            break
        for k in live:
            _actuate(banked[k], schedules[k][p])
        bank.run_period_bank(spec.period_steps(), only=live)

    reference = [make(k) for k in range(len(workloads))]
    for k, board in enumerate(reference):
        board.enable_fast_path = reference_fast_path
        for p in range(periods):
            if board.done:
                break
            _actuate(board, schedules[k][p])
            if reference_fast_path:
                board.run_period(spec.period_steps())
            else:
                for _ in range(spec.period_steps()):
                    if board.done:
                        break
                    board.step()
    return bank, banked, reference


# ---------------------------------------------------------------------------
# Lockstep bit-identity scenarios
# ---------------------------------------------------------------------------
class TestBankBitIdentity:
    def test_cool_dvfs_only_rides_vector_kernel(self):
        """Frequency-only actuation (no hotplug, no migration) must engage
        the vectorized lockstep kernel and still match per-board stepping."""
        spec = default_xu3_spec()
        workloads = ["blackscholes", "mcf", "mix:blmc", "gamess"]
        schedules = []
        for k in range(len(workloads)):
            base = _actuation_schedule(spec, 25, 100 + k)
            schedules.append([
                dict(cmd, cores_big=4, cores_little=4,
                     placement=(4.0, 2.0, 2.0))
                for cmd in base
            ])
        bank, banked, reference = _run_pair(spec, workloads, schedules, 25)
        for k, (a, b) in enumerate(zip(banked, reference)):
            _assert_boards_identical(a, b, label=f"board {k}")
        counters = bank.counters()
        assert counters["vector_ticks"] > 0, "vector path never engaged"

    def test_hotplug_churn_falls_back_bit_identically(self):
        """Per-period core/placement churn keeps the planner refusing
        (hotplug + migration stalls) — everything rides the scalar
        fallback, and must still be bit-identical."""
        spec = default_xu3_spec()
        workloads = ["blackscholes", "mcf", "mix:blmc", "gamess"]
        schedules = [_actuation_schedule(spec, 25, 100 + k)
                     for k in range(len(workloads))]
        bank, banked, reference = _run_pair(spec, workloads, schedules, 25)
        for k, (a, b) in enumerate(zip(banked, reference)):
            _assert_boards_identical(a, b, label=f"board {k}")
        assert bank.counters()["events"]["plan_refused"] > 0

    def test_hot_emergency_windows(self):
        """Pin max-frequency boards so the emergency firmware trips."""
        spec = default_xu3_spec()
        workloads = ["mix:blmc", "mix:stga", "mix:blst", "mix:mcga"]
        schedules = []
        for k in range(len(workloads)):
            schedules.append([
                {"freq_big": 2.0, "freq_little": 1.4,
                 "cores_big": 4, "cores_little": 4,
                 "placement": (4.0 + k, 2.0, 2.0)}
            ] * 120)
        bank, banked, reference = _run_pair(spec, workloads, schedules, 120)
        assert any(
            b.emergency.state.trip_count > 0 for b in banked
        ), "scenario no longer trips the emergency firmware"
        for k, (a, b) in enumerate(zip(banked, reference)):
            _assert_boards_identical(a, b, label=f"board {k}")

    def test_run_to_completion_membership_churn(self):
        spec = default_xu3_spec()
        workloads = ["vips", "swaptions", "vips"]
        schedules = []
        for k in range(len(workloads)):
            base = _actuation_schedule(spec, 800, 7 * k + 1)
            # Keep frequencies high enough that every board finishes well
            # inside the horizon; core/placement churn stays random.
            schedules.append([
                dict(cmd,
                     freq_big=max(cmd["freq_big"], 1.2),
                     freq_little=max(cmd["freq_little"], 0.8))
                for cmd in base
            ])
        bank, banked, reference = _run_pair(spec, workloads, schedules, 800,
                                            record=False)
        for k, (a, b) in enumerate(zip(banked, reference)):
            assert a.done and b.done, f"board {k} did not complete"
            _assert_boards_identical(a, b, label=f"board {k}")

    def test_executed_tick_counts_match_run_period(self):
        spec = default_xu3_spec()
        boards = [Board(make_application("blackscholes"), spec=spec, seed=3,
                        record=False)]
        bank = BoardBank(boards, telemetry=None)
        solo = Board(make_application("blackscholes"), spec=spec, seed=3,
                     record=False)
        for _ in range(10):
            executed = bank.run_period_bank(spec.period_steps())
            assert executed[0] == solo.run_period(spec.period_steps())

    def test_only_restricts_stepping(self):
        spec = default_xu3_spec()
        boards = [Board(make_application("mcf"), spec=spec, seed=k,
                        record=False) for k in range(3)]
        bank = BoardBank(boards, telemetry=None)
        executed = bank.run_period_bank(spec.period_steps(), only=[1])
        assert executed[0] == 0 and executed[2] == 0
        assert executed[1] == spec.period_steps()
        assert boards[0].time == 0.0 and boards[2].time == 0.0


# ---------------------------------------------------------------------------
# Scalar fallback: tick hooks and disabled vector path
# ---------------------------------------------------------------------------
class TestBankFallback:
    def test_tick_hook_forces_scalar_and_stays_identical(self):
        spec = default_xu3_spec()
        workloads = ["blackscholes", "mcf"]
        schedules = [_actuation_schedule(spec, 12, 5 + k)
                     for k in range(len(workloads))]

        seen = []
        banked = [
            Board(make_application(w), spec=spec, seed=30 + k, record=True,
                  telemetry=None)
            for k, w in enumerate(workloads)
        ]
        bank = BoardBank(banked, telemetry=None)
        bank.set_tick_hook(0, lambda board: seen.append(board.time))
        for p in range(12):
            for k in range(2):
                _actuate(banked[k], schedules[k][p])
            bank.run_period_bank(spec.period_steps())

        reference = [
            Board(make_application(w), spec=spec, seed=30 + k, record=True,
                  telemetry=None)
            for k, w in enumerate(workloads)
        ]
        for k, board in enumerate(reference):
            for p in range(12):
                _actuate(board, schedules[k][p])
                board.run_period(spec.period_steps())
        for k, (a, b) in enumerate(zip(banked, reference)):
            _assert_boards_identical(a, b, label=f"board {k}")
        assert len(seen) == 12 * spec.period_steps(), "hook missed ticks"
        assert bank.counters()["scalar_ticks"] >= len(seen)

    def test_hook_removal_restores_vector_path(self):
        spec = default_xu3_spec()
        board = Board(make_application("mcf"), spec=spec, seed=1, record=False)
        bank = BoardBank([board], telemetry=None)
        bank.set_tick_hook(0, lambda b: None)
        bank.run_period_bank(spec.period_steps())
        before = bank.counters()["vector_ticks"]
        bank.set_tick_hook(0, None)
        bank.run_period_bank(spec.period_steps())
        assert bank.counters()["vector_ticks"] > before

    def test_enable_vector_path_false_is_pure_fastpath(self):
        spec = default_xu3_spec()
        board = Board(make_application("mcf"), spec=spec, seed=1, record=False)
        bank = BoardBank([board], telemetry=None)
        bank.enable_vector_path = False
        bank.run_period_bank(spec.period_steps())
        assert bank.counters()["vector_ticks"] == 0
        assert bank.counters()["scalar_ticks"] == spec.period_steps()


# ---------------------------------------------------------------------------
# Fused multi-period schedule kernel (run_schedule_bank)
# ---------------------------------------------------------------------------
def _schedule_pair(spec, workloads, fb, fl, block_periods, seed0=11,
                   record=True, reference_fast_path=True):
    """``run_schedule_bank`` vs the per-board per-period reference loop."""
    def make(k):
        w = workloads[k]
        apps = make_mix(w[4:]) if w.startswith("mix:") else make_application(w)
        return Board(apps, spec=spec, seed=seed0 + k, record=record,
                     telemetry=None)

    banked = [make(k) for k in range(len(workloads))]
    bank = BoardBank(banked, telemetry=None)
    executed = bank.run_schedule_bank(fb, fl, block_periods=block_periods)

    reference = [make(k) for k in range(len(workloads))]
    ref_ticks = [0] * len(reference)
    for k, board in enumerate(reference):
        board.enable_fast_path = reference_fast_path
        for p in range(len(fb)):
            if board.done:
                break
            board.set_cluster_frequency(BIG, fb[p])
            board.set_cluster_frequency(LITTLE, fl[p])
            if reference_fast_path:
                ref_ticks[k] += board.run_period(spec.period_steps())
            else:
                for _ in range(spec.period_steps()):
                    if board.done:
                        break
                    board.step()
                    ref_ticks[k] += 1
    return bank, banked, reference, executed, ref_ticks


def _cyclic_schedule(periods):
    """A fusible DVFS cycle: operating points cool enough that the
    whole-block no-trip bound holds for every workload used here (a hot
    lane would make the kernel — correctly — refuse to fuse)."""
    fb = [0.8 + 0.1 * (p % 4) for p in range(periods)]
    fl = [0.5 + 0.05 * (p % 4) for p in range(periods)]
    return fb, fl


class TestFusedSchedule:
    def test_matches_per_period_loop_and_fuses(self):
        """The fused kernel must both engage and stay bit-identical —
        including clamp-and-count of out-of-range commands inside a
        fused block."""
        spec = default_xu3_spec()
        workloads = ["blackscholes", "mcf", "mix:blmc", "gamess"]
        fb, fl = _cyclic_schedule(40)
        fb[5] = -3.0  # below range: clamped, counted, still fusible
        fl[23] = 99.0  # above range likewise
        bank, banked, reference, executed, ref_ticks = _schedule_pair(
            spec, workloads, fb, fl, block_periods=16
        )
        assert bank.fused_blocks > 0, "fused kernel never engaged"
        assert executed == ref_ticks
        for k, (a, b) in enumerate(zip(banked, reference)):
            _assert_boards_identical(a, b, label=f"board {k}")
            assert a.rejected_actuations == b.rejected_actuations, \
                f"board {k} rejected counters"

    @pytest.mark.parametrize("block", [1, 7, 64])
    def test_k_boundary_cases(self, block):
        """K=1 (degenerate blocks), 40 % 7 != 0 (partial final block),
        and block > P (whole schedule in one block) all stay exact."""
        spec = default_xu3_spec()
        workloads = ["blackscholes", "mix:blmc"]
        fb, fl = _cyclic_schedule(40)
        bank, banked, reference, executed, ref_ticks = _schedule_pair(
            spec, workloads, fb, fl, block_periods=block
        )
        assert bank.fused_blocks > 0
        assert executed == ref_ticks
        for k, (a, b) in enumerate(zip(banked, reference)):
            _assert_boards_identical(a, b, label=f"block={block} board {k}")

    def test_nonfinite_entries_carry_forward(self):
        """NaN/inf commands must be dropped-and-counted with the previous
        frequency surviving — the exact per-period path owns those
        periods, fused blocks resume after them."""
        spec = default_xu3_spec()
        workloads = ["blackscholes", "gamess"]
        fb, fl = _cyclic_schedule(30)
        fb[10] = float("nan")
        fl[17] = float("inf")
        bank, banked, reference, executed, ref_ticks = _schedule_pair(
            spec, workloads, fb, fl, block_periods=8
        )
        assert bank.fused_blocks > 0
        assert executed == ref_ticks
        for k, (a, b) in enumerate(zip(banked, reference)):
            _assert_boards_identical(a, b, label=f"board {k}")
            assert a.nonfinite_commands == b.nonfinite_commands, \
                f"board {k} nonfinite counters"

    def test_lane_completes_mid_schedule(self):
        """A lane finishing its program must drop out exactly where the
        reference does (the credit horizon shrinks its fused blocks as
        the end approaches; it can never die inside one)."""
        spec = default_xu3_spec()
        workloads = ["vips", "swaptions", "vips"]
        periods = 800
        fb = [1.2 + 0.1 * (p % 2) for p in range(periods)]
        fl = [0.8 + 0.05 * (p % 3) for p in range(periods)]
        bank, banked, reference, executed, ref_ticks = _schedule_pair(
            spec, workloads, fb, fl, block_periods=16, record=False
        )
        assert executed == ref_ticks
        for k, (a, b) in enumerate(zip(banked, reference)):
            assert a.done and b.done, f"board {k} did not complete"
            _assert_boards_identical(a, b, label=f"board {k}")

    def test_emergency_churn_keeps_vector_path(self):
        """A schedule hot enough to trip the emergency firmware must fall
        back per-period (never a whole-bank scalar bailout): the divergent
        lane peels, every lane re-enters the vector kernel."""
        spec = default_xu3_spec()
        workloads = ["mix:blmc", "mix:stga", "mix:blst", "mix:mcga"]
        periods = 120
        fb = [2.0] * periods
        fl = [1.4] * periods
        bank, banked, reference, executed, ref_ticks = _schedule_pair(
            spec, workloads, fb, fl, block_periods=16
        )
        assert any(
            b.emergency.state.trip_count > 0 for b in banked
        ), "scenario no longer trips the emergency firmware"
        counters = bank.counters()
        assert counters["vector_ticks"] > counters["scalar_ticks"], \
            "emergency churn pushed the bank off the vector path"
        assert executed == ref_ticks
        for k, (a, b) in enumerate(zip(banked, reference)):
            _assert_boards_identical(a, b, label=f"board {k}")

    def test_schedule_length_mismatch_raises(self):
        spec = default_xu3_spec()
        board = Board(make_application("mcf"), spec=spec, seed=1,
                      record=False)
        bank = BoardBank([board], telemetry=None)
        with pytest.raises(ValueError, match="length mismatch"):
            bank.run_schedule_bank([1.0, 1.2], [0.8])

    def test_only_restricts_schedule(self):
        spec = default_xu3_spec()
        boards = [Board(make_application("mcf"), spec=spec, seed=k,
                        record=False) for k in range(3)]
        bank = BoardBank(boards, telemetry=None)
        fb, fl = _cyclic_schedule(5)
        executed = bank.run_schedule_bank(fb, fl, only=[1])
        assert executed[0] == 0 and executed[2] == 0
        assert executed[1] == 5 * spec.period_steps()
        assert boards[0].time == 0.0 and boards[2].time == 0.0


# ---------------------------------------------------------------------------
# Property: random specs, random schedules, scalar reference
# ---------------------------------------------------------------------------
class TestBankProperties:
    @given(spec=board_specs(), seed=st.integers(min_value=0, max_value=9999))
    @settings(max_examples=10, deadline=None)
    def test_bank_matches_pure_scalar_boards(self, spec, seed):
        """Random specs + schedules: the bank must replay B pure-scalar
        boards bit-exactly, RNG streams and mid-window fallbacks included.
        """
        workloads = ["blackscholes", "mcf", "gamess"]
        schedules = [_actuation_schedule(spec, 6, seed + 17 * k)
                     for k in range(len(workloads))]
        bank, banked, reference = _run_pair(
            spec, workloads, schedules, 6, record=True,
            reference_fast_path=False, seed0=seed,
        )
        for k, (a, b) in enumerate(zip(banked, reference)):
            _assert_boards_identical(a, b, label=f"board {k}")

    @given(spec=board_specs(), seed=st.integers(min_value=0, max_value=9999),
           block=st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_fused_schedule_matches_pure_scalar(self, spec, seed, block):
        """Random specs, random full-range DVFS schedules (hot points trip
        the emergency firmware on some examples), and a random mid-run
        hotplug: the fused kernel must replay pure-scalar boards
        bit-exactly whatever mix of fused blocks, per-period fallback,
        and stall peeling the run goes through."""
        rng = np.random.default_rng(seed)
        workloads = ["blackscholes", "mcf", "gamess"]
        periods = 6
        rb = spec.cluster(BIG).freq_range
        rl = spec.cluster(LITTLE).freq_range
        fb = [float(x) for x in rng.uniform(rb.low, rb.high, periods)]
        fl = [float(x) for x in rng.uniform(rl.low, rl.high, periods)]
        split = int(rng.integers(1, periods))
        cores_b = int(rng.integers(1, spec.cluster(BIG).n_cores + 1))
        cores_l = int(rng.integers(1, spec.cluster(LITTLE).n_cores + 1))

        def make(k):
            return Board(make_application(workloads[k]), spec=spec,
                         seed=seed + k, record=True, telemetry=None)

        banked = [make(k) for k in range(len(workloads))]
        bank = BoardBank(banked, telemetry=None)
        bank.run_schedule_bank(fb[:split], fl[:split], block_periods=block)
        for board in banked:
            if not board.done:
                board.set_active_cores(BIG, cores_b)
                board.set_active_cores(LITTLE, cores_l)
        bank.run_schedule_bank(fb[split:], fl[split:], block_periods=block)

        for k in range(len(workloads)):
            board = make(k)
            board.enable_fast_path = False
            steps = spec.period_steps()
            for p in range(periods):
                if board.done:
                    break
                if p == split:
                    board.set_active_cores(BIG, cores_b)
                    board.set_active_cores(LITTLE, cores_l)
                board.set_cluster_frequency(BIG, fb[p])
                board.set_cluster_frequency(LITTLE, fl[p])
                for _ in range(steps):
                    if board.done:
                        break
                    board.step()
            _assert_boards_identical(banked[k], board, label=f"board {k}")


# ---------------------------------------------------------------------------
# Integration: characterization, matrix, resilience, verify
# ---------------------------------------------------------------------------
class TestBankIntegration:
    def test_banked_characterization_matches_scalar(self):
        from repro.core.characterize import characterize_board

        spec = default_xu3_spec()
        a = characterize_board(spec, samples_per_program=24, seed=7,
                               banked=False)
        b = characterize_board(spec, samples_per_program=24, seed=7,
                               banked=True)
        assert np.array_equal(a.hw_data.inputs, b.hw_data.inputs)
        assert np.array_equal(a.hw_data.outputs, b.hw_data.outputs)
        assert np.array_equal(a.sw_data.inputs, b.sw_data.inputs)
        assert np.array_equal(a.sw_data.outputs, b.sw_data.outputs)
        assert np.array_equal(a.joint_data.inputs, b.joint_data.inputs)
        assert np.array_equal(a.joint_data.outputs, b.joint_data.outputs)
        assert a.output_ranges == b.output_ranges
        assert a.output_mids == b.output_mids

    def test_batched_matrix_matches_serial(self, design_context):
        from repro.experiments import run_scheme_matrix

        schemes = ["coordinated-heuristic", "decoupled-heuristic"]
        workloads = ["blackscholes", "mcf"]
        serial = run_scheme_matrix(schemes, workloads, design_context,
                                   seed=7, max_time=10.0, record=True)
        batched = run_scheme_matrix(schemes, workloads, design_context,
                                    seed=7, max_time=10.0, record=True,
                                    batch=3)
        for w in serial:
            for s in serial[w]:
                a, b = serial[w][s], batched[w][s]
                assert a.execution_time == b.execution_time, (w, s)
                assert a.energy == b.energy, (w, s)
                assert a.completed == b.completed, (w, s)
                assert (a.notes["emergency_trips"]
                        == b.notes["emergency_trips"]), (w, s)
                assert (a.notes["coordinator_records"]
                        == b.notes["coordinator_records"]), (w, s)
                for signal in a.trace:
                    assert np.array_equal(a.trace[signal],
                                          b.trace[signal]), (w, s, signal)

    def test_monolithic_cells_are_rejected_by_bank_runner(self):
        from repro.experiments import bankable_scheme, run_cells_banked
        from repro.experiments.schemes import MONOLITHIC_LQG

        assert bankable_scheme("coordinated-heuristic")
        assert not bankable_scheme(MONOLITHIC_LQG)
        with pytest.raises(ValueError, match="monolithic"):
            run_cells_banked([(MONOLITHIC_LQG, "mcf", 7)], context=None)

    def test_banked_resilience_matches_solo_runs(self, design_context):
        from repro.experiments.resilience import (
            supervised_run,
            supervised_runs_banked,
        )
        from repro.faults import default_fault_matrix

        matrix = default_fault_matrix(fault_time=8.0, quick=True)
        campaigns = [None, matrix[0][1]]
        banked = supervised_runs_banked(
            design_context, "coordinated-heuristic", campaigns,
            max_time=30.0, seed=11,
        )
        solo = [
            supervised_run(
                design_context, "coordinated-heuristic",
                campaign=default_fault_matrix(fault_time=8.0,
                                              quick=True)[0][1]
                if i else None,
                max_time=30.0, seed=11,
            )
            for i in range(2)
        ]
        for i, (a, b) in enumerate(zip(banked, solo)):
            assert a.exd == b.exd, i
            assert a.completed == b.completed, i
            assert a.temp_violation_time == b.temp_violation_time, i
            assert a.power_violation_time == b.power_violation_time, i
            assert a.supervisor.tripped == b.supervisor.tripped, i
            assert (a.supervisor.detection_time
                    == b.supervisor.detection_time), i
            assert (a.supervisor.time_degraded
                    == b.supervisor.time_degraded), i

    def test_oracle_bank_agrees(self):
        from repro.verify.oracles import oracle_bank

        result = oracle_bank(periods=10)
        assert result.agree, result.render()
        assert result.max_ulp == 0.0
        assert result.tolerance_ulp == 0.0

    def test_oracle_bank_schedule_agrees(self):
        from repro.verify.oracles import oracle_bank_schedule

        result = oracle_bank_schedule(periods=20)
        assert result.agree, result.render()
        assert result.max_ulp == 0.0
        assert result.tolerance_ulp == 0.0
        assert result.details["fused_blocks"] > 0

    def test_oracle_bank_matrix_agrees(self, design_context):
        from repro.verify.oracles import oracle_bank_matrix

        result = oracle_bank_matrix(design_context, max_time=6.0)
        assert result.agree, result.render()

    def test_shared_sim_dt_required(self):
        spec_a = default_xu3_spec()
        spec_b = dataclasses.replace(spec_a, sim_dt=spec_a.sim_dt * 2)
        boards = [
            Board(make_application("mcf"), spec=spec_a, seed=1, record=False),
            Board(make_application("mcf"), spec=spec_b, seed=2, record=False),
        ]
        with pytest.raises(ValueError, match="sim_dt"):
            BoardBank(boards, telemetry=None)


# ---------------------------------------------------------------------------
# Heterogeneous banks: two different BoardSpecs sharing one lockstep bank
# ---------------------------------------------------------------------------
def _hetero_specs(sim_dt=0.05):
    spec_a = default_xu3_spec(sim_dt=sim_dt)
    spec_b = dataclasses.replace(
        default_xu3_spec(sim_dt=sim_dt),
        control_period=1.0,
        ambient_temp=38.0,
        thermal_resistance=12.5,
    )
    return spec_a, spec_b


class TestHeterogeneousBank:
    """Regression: no bank consumer may assume one shared BoardSpec.

    The bank's constants, plan memos, and snap caches are all per-lane /
    per-spec; these tests pin that with two genuinely different specs
    (different control periods and thermal constants) in one bank.
    """

    def test_mixed_specs_period_path_bit_identical(self):
        spec_a, spec_b = _hetero_specs()
        steps = spec_a.period_steps()
        workloads = ["mcf", "gamess", "blackscholes", "fluidanimate"]

        def make(k):
            spec = spec_a if k % 2 == 0 else spec_b
            return Board(make_application(workloads[k]), spec=spec,
                         seed=11 + k, record=True, telemetry=None)

        banked = [make(k) for k in range(4)]
        bank = BoardBank(banked, telemetry=None)
        rng = np.random.default_rng(5)
        freqs = [(float(f), float(g)) for f, g in zip(
            rng.uniform(0.4, 1.2, 20), rng.uniform(0.4, 1.0, 20))]
        for fb, fl in freqs:
            for board in banked:
                board.set_cluster_frequency(BIG, fb)
                board.set_cluster_frequency(LITTLE, fl)
            bank.run_period_bank(steps)

        reference = [make(k) for k in range(4)]
        for board in reference:
            for fb, fl in freqs:
                board.set_cluster_frequency(BIG, fb)
                board.set_cluster_frequency(LITTLE, fl)
                board.run_period(steps)
        for k, (a, b) in enumerate(zip(banked, reference)):
            _assert_boards_identical(a, b, label=f"hetero board {k}")
        assert bank.vector_ticks > 0

    def test_mixed_specs_schedule_groups_bit_identical(self):
        """Same-spec selections ride run_schedule_bank; mixed ones raise."""
        spec_a, spec_b = _hetero_specs()
        workloads = ["mcf", "gamess", "blackscholes", "fluidanimate"]

        def make(k):
            spec = spec_a if k % 2 == 0 else spec_b
            return Board(make_application(workloads[k]), spec=spec,
                         seed=3 + k, record=True, telemetry=None)

        banked = [make(k) for k in range(4)]
        bank = BoardBank(banked, telemetry=None)
        # Mixed period_steps across the selection must refuse loudly.
        with pytest.raises(ValueError):
            bank.run_schedule_bank([0.6] * 4, [0.5] * 4)
        # Grouped by spec, both groups fuse and match scalar stepping.
        fb, fl = [0.6, 0.7, 0.6, 0.8], [0.5, 0.5, 0.6, 0.5]
        for _ in range(3):
            bank.run_schedule_bank(fb, fl, only=[0, 2], block_periods=4)
            bank.run_schedule_bank(fb, fl, only=[1, 3], block_periods=4)

        reference = [make(k) for k in range(4)]
        for k, board in enumerate(reference):
            steps = (spec_a if k % 2 == 0 else spec_b).period_steps()
            for _ in range(3):
                for p in range(4):
                    board.set_cluster_frequency(BIG, fb[p])
                    board.set_cluster_frequency(LITTLE, fl[p])
                    board.run_period(steps)
        for k, (a, b) in enumerate(zip(banked, reference)):
            _assert_boards_identical(a, b, label=f"hetero schedule board {k}")
        assert bank.fused_ticks > 0

    def test_invalidate_board_after_out_of_band_app_append(self):
        """Out-of-band workload mutation needs invalidate_board.

        Appending an application between windows is invisible to every
        plan-reuse tier (no actuation or placement epoch ticks), so the
        bank would keep crediting the stale thread set.  ``invalidate_
        board`` retires the lane's caches; with it, the bank matches
        scalar stepping bit-for-bit.
        """
        spec = default_xu3_spec(sim_dt=0.05)
        steps = spec.period_steps()

        def run_banked(invalidate):
            boards = [
                Board(make_application("mcf"), spec=spec, seed=1,
                      record=True, telemetry=None),
                Board(make_application("gamess"), spec=spec, seed=2,
                      record=True, telemetry=None),
            ]
            bank = BoardBank(boards, telemetry=None)
            for board in boards:
                board.set_cluster_frequency(BIG, 1.0)
                board.set_cluster_frequency(LITTLE, 0.8)
            for _ in range(10):
                bank.run_period_bank(steps)
            boards[0].applications.append(make_application("blackscholes"))
            if invalidate:
                bank.invalidate_board(0)
            for _ in range(10):
                bank.run_period_bank(steps)
            return boards[0]

        reference = Board(make_application("mcf"), spec=spec, seed=1,
                          record=True, telemetry=None)
        reference.set_cluster_frequency(BIG, 1.0)
        reference.set_cluster_frequency(LITTLE, 0.8)
        for _ in range(10):
            reference.run_period(steps)
        reference.applications.append(make_application("blackscholes"))
        for _ in range(10):
            reference.run_period(steps)

        good = run_banked(invalidate=True)
        _assert_boards_identical(good, reference, label="invalidated lane")

        # Non-vacuity: without the invalidation the stale plan really does
        # starve the appended application (this is the bug being pinned).
        stale = run_banked(invalidate=False)
        assert stale.applications[1].completed_instructions == 0.0
        assert reference.applications[1].completed_instructions > 0.0
