"""Control-quality analytics: step response, exposure, churn, reports."""

import json

import numpy as np
import pytest

from repro.board import default_xu3_spec
from repro.experiments import run_workload
from repro.experiments.bank_runner import run_cells_banked
from repro.experiments.schemes import DesignContext
from repro.obs import (
    QualityReport,
    analyze_matrix,
    analyze_run,
    analyze_trace,
    exposure,
    step_response,
    transition_count,
)

SPEC = default_xu3_spec()


@pytest.fixture(scope="module")
def spec_context():
    """Spec-only context: heuristic schemes run without synthesis."""
    return DesignContext(spec=SPEC, characterization=None)


# ---------------------------------------------------------------------------
# step_response
# ---------------------------------------------------------------------------
class TestStepResponse:
    def test_first_order_settling(self):
        # y(t) = 1 - exp(-t): within 5% of final after t ≈ 3 time constants.
        t = np.arange(0.0, 10.0, 0.1)
        y = 1.0 - np.exp(-t)
        resp = step_response(t, y, signal="y")
        assert resp.settled
        assert resp.initial == pytest.approx(0.0)
        assert resp.final == pytest.approx(1.0, abs=0.02)
        assert 2.0 < resp.settling_time < 4.0
        assert resp.overshoot_pct < 1.0  # monotone approach: no overshoot

    def test_overshoot_measured_against_step_size(self):
        t = np.arange(0.0, 10.0, 0.1)
        y = np.ones_like(t)
        y[:5] = 0.0
        y[5:10] = 1.5  # 50% overshoot of a unit step, then settles
        resp = step_response(t, y)
        assert resp.overshoot_pct == pytest.approx(50.0, abs=2.0)
        assert resp.settled

    def test_flat_signal_settles_instantly(self):
        t = np.arange(0.0, 5.0, 0.5)
        resp = step_response(t, np.full_like(t, 3.0))
        assert resp.settled
        assert resp.settling_time == 0.0
        assert resp.overshoot_pct == 0.0

    def test_never_settling_signal_flagged(self):
        t = np.arange(0.0, 10.0, 0.1)
        y = np.sin(3.0 * t)  # oscillates forever around 0
        resp = step_response(t, y)
        assert not resp.settled

    def test_step_time_offsets_measurement(self):
        t = np.arange(0.0, 10.0, 0.1)
        y = np.where(t < 5.0, 0.0, 1.0)
        resp = step_response(t, y, step_time=5.0)
        assert resp.step_time == pytest.approx(5.0)
        assert resp.initial == pytest.approx(1.0)  # first sample at/after step

    def test_empty_series(self):
        resp = step_response([], [], signal="none")
        assert resp.settled
        assert resp.settling_time == 0.0


# ---------------------------------------------------------------------------
# exposure / churn
# ---------------------------------------------------------------------------
class TestExposure:
    def test_two_violation_episodes(self):
        series = [1.0, 4.0, 4.0, 1.0, 5.0, 1.0]  # two excursions above 3
        exp = exposure(series, limit=3.0, dt=0.5)
        assert exp.violations == 2
        assert exp.time_above == pytest.approx(1.5)  # 3 samples * 0.5 s
        assert exp.peak == pytest.approx(5.0)
        assert exp.integral == pytest.approx((1.0 + 1.0 + 2.0) * 0.5)

    def test_starts_above_counts_as_violation(self):
        exp = exposure([9.0, 1.0], limit=3.0, dt=1.0)
        assert exp.violations == 1

    def test_never_above_reports_observed_peak(self):
        exp = exposure([1.0, 2.5, 2.0], limit=3.0, dt=1.0)
        assert exp.violations == 0
        assert exp.time_above == 0.0
        assert exp.integral == 0.0
        assert exp.peak == pytest.approx(2.5)  # worst value still reported

    def test_empty_series(self):
        exp = exposure([], limit=3.0, dt=1.0)
        assert exp.violations == 0 and exp.peak == 0.0


class TestTransitionCount:
    def test_counts_changes_only(self):
        assert transition_count([1, 1, 2, 2, 1, 1]) == 2

    def test_short_series(self):
        assert transition_count([]) == 0
        assert transition_count([5]) == 0


# ---------------------------------------------------------------------------
# analyze_trace / QualityReport
# ---------------------------------------------------------------------------
def _synthetic_trace(n=100, dt=0.05):
    t = np.arange(n) * dt
    power = np.where(t < 1.0, 4.0, 2.0)  # above the 3.3 W cap for 1 s
    return {
        "times": t,
        "power_big": power,
        "power_little": np.full(n, 0.4),
        "temperature": 60.0 + 10.0 * (1.0 - np.exp(-t)),
        "bips_total": np.full(n, 5.0),
        "freq_big": np.repeat([1.8e9, 1.4e9], n // 2),
        "cores_big": np.full(n, 4.0),
        "emergency": np.zeros(n),
    }


class TestAnalyzeTrace:
    def test_kpis_from_synthetic_trace(self):
        report = analyze_trace(_synthetic_trace(), SPEC,
                               scheme="s", workload="w")
        assert report.samples == 100
        assert report.duration == pytest.approx(5.0)
        assert report.power_cap.limit == pytest.approx(SPEC.power_limit_big)
        assert report.power_cap.violations == 1
        assert report.power_cap.time_above == pytest.approx(1.0)
        assert report.thermal.violations == 0
        assert report.dvfs_transitions == 1
        assert report.hotplug_transitions == 0
        assert report.dvfs_per_sec == pytest.approx(0.2)
        assert {r.signal for r in report.responses} >= {"power_big",
                                                        "temperature"}
        assert report.exd == pytest.approx(report.energy * report.duration)
        assert report.exd_timeline[-1][1] == pytest.approx(report.exd,
                                                           rel=0.05)

    def test_supervisor_residency(self):
        history = [(0.0, "NOMINAL"), (0.5, "NOMINAL"), (1.0, "DEGRADED")]
        report = analyze_trace(_synthetic_trace(), SPEC, supervisor=history)
        assert report.residency["NOMINAL"] == pytest.approx(
            2 * SPEC.control_period)
        assert report.residency["DEGRADED"] == pytest.approx(
            SPEC.control_period)

    def test_extra_step_events(self):
        report = analyze_trace(_synthetic_trace(), SPEC,
                               steps=[("power_big", 1.0)])
        assert any(r.signal == "power_big@1s" for r in report.responses)

    def test_json_round_trip(self):
        report = analyze_trace(_synthetic_trace(), SPEC,
                               scheme="s", workload="w")
        decoded = json.loads(report.to_json())
        assert decoded["scheme"] == "s"
        assert decoded["power_cap"]["violations"] == 1
        assert decoded["responses"][0]["signal"] == "power_big"
        # Everything JSON-native: a second round trip is identity.
        assert json.loads(json.dumps(decoded)) == decoded

    def test_render_mentions_headlines(self):
        text = analyze_trace(_synthetic_trace(), SPEC,
                             scheme="s", workload="w").render()
        assert "power cap" in text and "churn" in text and "settled" in text

    def test_response_lookup(self):
        report = analyze_trace(_synthetic_trace(), SPEC)
        assert report.response("power_big").signal == "power_big"
        with pytest.raises(KeyError):
            report.response("nope")


# ---------------------------------------------------------------------------
# analyze_run / analyze_matrix — on real recorded runs
# ---------------------------------------------------------------------------
class TestAnalyzeRun:
    def test_requires_trace(self, spec_context):
        metrics = run_workload("coordinated-heuristic", "gamess",
                               spec_context, max_time=10.0, record=False)
        with pytest.raises(ValueError, match="record=True"):
            analyze_run(metrics, SPEC)

    def test_energy_matches_runner_ground_truth(self, spec_context):
        metrics = run_workload("coordinated-heuristic", "gamess",
                               spec_context, max_time=20.0, record=True)
        report = analyze_run(metrics, SPEC)
        assert report.energy == pytest.approx(metrics.energy)
        assert report.duration == pytest.approx(metrics.execution_time)
        assert report.exd == pytest.approx(
            metrics.energy * metrics.execution_time)
        assert report.samples > 0

    def test_scalar_and_bank_lane_reports_identical(self, spec_context):
        """The analyzer is lane-agnostic: scalar loop and BoardBank lane
        produce bit-identical traces, hence bit-identical reports."""
        cell = ("coordinated-heuristic", "gamess", 7)
        scalar = run_workload(*cell[:2], spec_context, seed=7,
                              max_time=20.0, record=True)
        banked, = run_cells_banked([cell], spec_context, max_time=20.0,
                                   record=True)
        r_scalar = analyze_run(scalar, SPEC)
        r_banked = analyze_run(banked, SPEC)
        d_scalar, d_banked = r_scalar.to_dict(), r_banked.to_dict()
        # notes carry lane provenance (the bank adds its own bookkeeping);
        # every KPI must match exactly.
        d_scalar.pop("notes")
        d_banked.pop("notes")
        assert d_scalar == d_banked

    def test_analyze_matrix_skips_traceless_cells(self, spec_context):
        with_trace = run_workload("coordinated-heuristic", "gamess",
                                  spec_context, max_time=10.0, record=True)
        without = run_workload("coordinated-heuristic", "gamess",
                               spec_context, max_time=10.0, record=False)
        results = {"gamess": {"a": with_trace, "b": without}}
        reports = analyze_matrix(results, SPEC)
        assert set(reports["gamess"]) == {"a"}
        assert isinstance(reports["gamess"]["a"], QualityReport)
