"""Tests for frequency-dependent D-scale fitting."""

import numpy as np
import pytest

from repro.robust.dscale_fit import FittedScale, fit_dscale


class TestFitDscale:
    def test_recovers_first_order_profile(self):
        truth = FittedScale(gain=2.0, zero=0.5, pole=5.0, log_rms_error=0.0)
        omegas = np.logspace(-2, 2, 60)
        fit = fit_dscale(omegas, truth.magnitude(omegas))
        assert fit.magnitude(omegas) == pytest.approx(
            truth.magnitude(omegas), rel=0.15
        )
        assert fit.log_rms_error < 0.1

    def test_constant_profile_fits_flat(self):
        omegas = np.logspace(-1, 2, 40)
        fit = fit_dscale(omegas, np.full(40, 3.0))
        assert fit.is_nearly_constant(tol=0.5)
        assert fit.magnitude(1.0) == pytest.approx(3.0, rel=0.1)

    def test_statespace_matches_magnitude(self):
        fit = FittedScale(gain=1.5, zero=0.3, pole=3.0, log_rms_error=0.0)
        sys_ = fit.to_statespace()
        for omega in (0.01, 0.3, 3.0, 30.0):
            response = abs(sys_.at_frequency(omega)[0, 0])
            assert response == pytest.approx(fit.magnitude(omega), rel=1e-6)

    def test_inverse_cancels(self):
        from repro.lti import series

        fit = FittedScale(gain=2.0, zero=0.5, pole=5.0, log_rms_error=0.0)
        chain = series(fit.to_statespace(), fit.inverse_statespace())
        for omega in (0.1, 1.0, 10.0):
            assert abs(chain.at_frequency(omega)[0, 0]) == pytest.approx(1.0,
                                                                         rel=1e-6)

    def test_both_directions_stable(self):
        fit = FittedScale(gain=0.7, zero=2.0, pole=0.2, log_rms_error=0.0)
        assert fit.to_statespace().is_stable()
        assert fit.inverse_statespace().is_stable()


class TestDynamicDK:
    def test_dynamic_scales_run(self):
        """The dynamic-D path must synthesize and keep mu sane."""
        from repro.lti import StateSpace
        from repro.robust import build_generalized_plant, dk_synthesize
        from repro.sysid import ExperimentData, fit_arx, prbs, multilevel_random

        rng = np.random.default_rng(7)
        true = StateSpace(
            [[0.7, 0.1], [0.0, 0.5]], [[0.5, 0.1], [0.2, 0.6]],
            [[1.0, 0.2], [0.1, 1.0]], None, dt=0.5,
        )
        u = np.column_stack([
            prbs(800, -1, 1, seed=1, dwell=4),
            multilevel_random(800, [-1, 0, 1], 5, seed=2),
        ])
        _, y = true.simulate(u)
        y += 0.02 * rng.normal(size=y.shape)
        arx = fit_arx(ExperimentData(u, y, dt=0.5), na=2, nb=2, delay=1)
        augmented = build_generalized_plant(
            arx.to_statespace(), n_u=2,
            input_spans=[1.0, 1.0], input_mids=[0, 0],
            output_ranges=[4.0, 4.0], output_mids=[0, 0],
            bound_fractions=[0.2, 0.2], input_weights=[1.0, 1.0],
            guardband=0.4, external_scales=[],
        )
        constant = dk_synthesize(augmented, max_iterations=2, mu_points=12)
        dynamic = dk_synthesize(augmented, max_iterations=2, mu_points=12,
                                dynamic_scales=True)
        assert dynamic.hinf.closed_loop.is_stable()
        # Dynamic scalings must not be (much) worse than constant ones.
        assert dynamic.mu.peak_upper <= constant.mu.peak_upper * 1.25
