"""Tests for the characterization (training campaign) machinery."""

import numpy as np
import pytest

from repro.board import Board, default_xu3_spec
from repro.core import characterize_board, sample_signals
from repro.core.layer import HW_OUTPUTS, SW_OUTPUTS
from repro.workloads import make_application


@pytest.fixture(scope="module")
def characterization():
    return characterize_board(default_xu3_spec(), samples_per_program=60,
                              programs=("swaptions", "milc"), seed=5)


class TestSampleSignals:
    def test_all_signals_present(self):
        spec = default_xu3_spec()
        board = Board(make_application("swaptions"), spec=spec, seed=1,
                      record=False)
        steps = int(round(spec.control_period / spec.sim_dt))
        for _ in range(steps):
            board.step()
        signals = sample_signals(board, steps)
        expected = set(HW_OUTPUTS) | set(SW_OUTPUTS) | {
            "n_threads_big", "tpc_big", "tpc_little",
            "n_big_cores", "n_little_cores", "freq_big", "freq_little",
        }
        assert expected <= set(signals)
        assert signals["bips_total"] == pytest.approx(
            signals["bips_big"] + signals["bips_little"]
        )


class TestCharacterization:
    def test_datasets_have_right_shapes(self, characterization):
        assert characterization.hw_data.n_inputs == 7
        assert characterization.hw_data.n_outputs == 4
        assert characterization.sw_data.n_inputs == 7
        assert characterization.sw_data.n_outputs == 3
        assert characterization.joint_data.n_outputs == 7

    def test_boundaries_align_with_runs(self, characterization):
        assert characterization.hw_boundaries[0] == 0
        assert len(characterization.hw_boundaries) >= 2

    def test_ranges_are_sane(self, characterization):
        low, high = characterization.output_ranges["power_big"]
        assert 0.0 <= low < high < 10.0
        low, high = characterization.output_ranges["temperature"]
        assert 40.0 < low < high < 100.0

    def test_range_helpers(self, characterization):
        rng = characterization.range_of("bips_total")
        mid = characterization.mid_of("bips_total")
        low, high = characterization.output_ranges["bips_total"]
        assert rng == pytest.approx(high - low)
        assert mid == pytest.approx((high + low) / 2)

    def test_excitation_visits_many_levels(self, characterization):
        freqs = np.unique(characterization.hw_data.inputs[:, 2])
        assert freqs.size >= 4  # f_big swept several levels
        threads = np.unique(characterization.sw_data.inputs[:, 0])
        assert threads.size >= 3  # t_big swept
