"""The parallel experiment engine: determinism, ordering, telemetry merge."""

import json

import pytest

from repro.experiments import (
    COORDINATED_HEURISTIC,
    YUKTA_HW_SSV_OS_SSV,
    run_scheme_matrix,
)
from repro.experiments.engine import parallel_map, resolve_jobs

SCHEMES = [COORDINATED_HEURISTIC, YUKTA_HW_SSV_OS_SSV]
WORKLOADS = ["blackscholes", "gamess"]
MAX_TIME = 120.0


class TestResolveJobs:
    def test_defaults_to_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1

    def test_minus_one_is_cpu_count(self):
        import os

        assert resolve_jobs(-1) == max(os.cpu_count() or 1, 1)

    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3


class TestMatrixDeterminism:
    @pytest.fixture(scope="class")
    def serial(self, design_context):
        return run_scheme_matrix(SCHEMES, WORKLOADS, design_context,
                                 max_time=MAX_TIME)

    def test_serial_vs_parallel_bit_identical(self, design_context, serial):
        parallel = run_scheme_matrix(SCHEMES, WORKLOADS, design_context,
                                     max_time=MAX_TIME, jobs=2)
        assert list(parallel) == list(serial)
        for workload in serial:
            assert list(parallel[workload]) == list(serial[workload])
            for scheme in serial[workload]:
                a = serial[workload][scheme]
                b = parallel[workload][scheme]
                assert a.execution_time == b.execution_time
                assert a.energy == b.energy
                assert a.completed == b.completed
                assert a.notes == b.notes

    def test_jobs_one_matches_serial_path(self, design_context, serial):
        explicit = run_scheme_matrix(SCHEMES, WORKLOADS, design_context,
                                     max_time=MAX_TIME, jobs=1)
        for workload in serial:
            for scheme in serial[workload]:
                assert (
                    explicit[workload][scheme].energy
                    == serial[workload][scheme].energy
                )

    def test_progress_called_in_task_order(self, design_context):
        seen = []
        run_scheme_matrix(SCHEMES, WORKLOADS, design_context,
                          max_time=MAX_TIME, jobs=2,
                          progress=lambda m: seen.append((m.workload, m.scheme)))
        expected = [(w, s) for w in WORKLOADS for s in SCHEMES]
        assert seen == expected

    def test_matrix_keys_resolved_without_runs(self, design_context):
        # The satellite fix: name resolution must not depend on the scheme
        # loop having executed (the old code read a loop variable after).
        result = run_scheme_matrix([], WORKLOADS, design_context)
        assert list(result) == WORKLOADS
        assert all(result[w] == {} for w in WORKLOADS)


def _double(context, value):
    return value * 2


class TestParallelMap:
    def test_call_tasks_ordered(self, design_context):
        tasks = [("call", (_double, (i,), {})) for i in range(5)]
        assert parallel_map(tasks, design_context, jobs=1) == [
            0, 2, 4, 6, 8
        ]

    def test_unknown_kind_raises(self, design_context):
        with pytest.raises(ValueError, match="unknown task kind"):
            parallel_map([("bogus", ())], design_context, jobs=1)


class TestTelemetryMerge:
    def test_worker_dirs_merge(self, design_context, tmp_path):
        from repro.experiments.engine import run_matrix

        tel_dir = tmp_path / "tel"

        run_matrix(SCHEMES, WORKLOADS, design_context, max_time=MAX_TIME,
                   jobs=2, telemetry_dir=str(tel_dir))
        workers = list(tel_dir.glob("worker-*"))
        assert workers, "workers should write telemetry subdirectories"
        merged = json.loads((tel_dir / "metrics.json").read_text())
        assert "control_periods_total" in merged
        total = merged["control_periods_total"]["values"][0]["value"]
        per_worker = 0.0
        for worker in workers:
            snap = json.loads((worker / "metrics.json").read_text())
            per_worker += snap["control_periods_total"]["values"][0]["value"]
        assert total == per_worker
        assert total > 0
        assert (tel_dir / "metrics.prom").is_file()

    def test_merge_metrics_dicts_sums_histograms(self):
        from repro.telemetry.merge import merge_metrics_dicts

        snap = {
            "lat": {
                "type": "histogram",
                "help": "",
                "values": [{
                    "labels": {},
                    "sum": 1.5,
                    "count": 3,
                    "buckets": [{"le": 1.0, "cumulative": 2}],
                }],
            },
            "runs": {
                "type": "counter",
                "help": "",
                "values": [{"labels": {}, "value": 2.0}],
            },
            "mode": {
                "type": "gauge",
                "help": "",
                "values": [{"labels": {}, "value": 1.0}],
            },
        }
        other = json.loads(json.dumps(snap))
        other["mode"]["values"][0]["value"] = 2.0
        merged = merge_metrics_dicts([snap, other])
        assert merged["lat"]["values"][0]["sum"] == 3.0
        assert merged["lat"]["values"][0]["count"] == 6
        assert merged["lat"]["values"][0]["buckets"][0]["cumulative"] == 4
        assert merged["runs"]["values"][0]["value"] == 4.0
        assert merged["mode"]["values"][0]["value"] == 2.0  # last write wins
