"""The persistent design-artifact cache: keying, recovery, CLI hygiene."""

import pickle

import pytest

import repro
from repro.board import default_xu3_spec
from repro.cache import MISS, DesignCache, fingerprint


class TestFingerprint:
    def test_deterministic(self):
        spec = default_xu3_spec()
        assert fingerprint("char", spec, 40, 3) == fingerprint("char", spec, 40, 3)

    def test_sensitive_to_every_part(self):
        spec = default_xu3_spec()
        base = fingerprint("char", spec, 40, 3)
        assert fingerprint("char", spec, 41, 3) != base
        assert fingerprint("char", spec, 40, 4) != base
        assert fingerprint("other", spec, 40, 3) != base

    def test_sensitive_to_spec_fields(self):
        import dataclasses

        spec = default_xu3_spec()
        other = dataclasses.replace(spec, temp_limit=80.0)
        assert fingerprint(spec) != fingerprint(other)

    def test_overrides_dict_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": None}) == fingerprint({"b": None, "a": 1})


class TestDesignCache:
    def test_miss_then_hit(self, tmp_path):
        cache = DesignCache(tmp_path)
        assert cache.get("k" * 8) is MISS
        cache.put("k" * 8, {"x": 1})
        assert cache.get("k" * 8) == {"x": 1}
        assert cache.hits == 1 and cache.misses == 1

    def test_fetch_builds_once(self, tmp_path):
        cache = DesignCache(tmp_path)
        calls = []
        build = lambda: calls.append(1) or "artifact"
        assert cache.fetch("key1", build) == "artifact"
        assert cache.fetch("key1", build) == "artifact"
        assert len(calls) == 1

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = DesignCache(tmp_path)
        cache.put("key2", [1, 2, 3])
        path = cache._path("key2")
        path.write_bytes(b"not a pickle")
        assert cache.get("key2") is MISS
        assert not path.exists()  # corrupted entry deleted
        assert cache.fetch("key2", lambda: [4]) == [4]  # recomputed

    def test_version_stamp_invalidates(self, tmp_path):
        cache = DesignCache(tmp_path)
        payload = {"version": "0.0.0-old", "key": "key3", "value": 42}
        cache._path("key3").write_bytes(pickle.dumps(payload))
        assert cache.get("key3") is MISS

    def test_key_mismatch_invalidates(self, tmp_path):
        cache = DesignCache(tmp_path)
        payload = {"version": repro.__version__, "key": "other", "value": 42}
        cache._path("key4").write_bytes(pickle.dumps(payload))
        assert cache.get("key4") is MISS

    def test_info_and_clear(self, tmp_path):
        cache = DesignCache(tmp_path)
        cache.put("aaaa", 1)
        cache.put("bbbb", 2)
        info = cache.info()
        assert str(tmp_path) in info and "entries: 2" in info
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_resolve_forms(self, tmp_path):
        assert DesignCache.resolve(None) is None
        assert DesignCache.resolve(False) is None
        cache = DesignCache(tmp_path)
        assert DesignCache.resolve(cache) is cache
        assert DesignCache.resolve(str(tmp_path)).root == tmp_path
        assert DesignCache.resolve(True).root is not None

    def test_env_var_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert DesignCache().root == tmp_path / "envcache"


class TestCacheFailurePaths:
    def test_clear_on_nonexistent_dir(self, tmp_path):
        cache = DesignCache(tmp_path / "never-created")
        assert cache.clear() == 0
        assert not (tmp_path / "never-created").exists()

    def test_info_on_nonexistent_dir(self, tmp_path):
        cache = DesignCache(tmp_path / "never-created")
        info = cache.info()
        assert "entries: 0" in info
        assert str(tmp_path / "never-created") in info

    def test_entries_on_nonexistent_dir(self, tmp_path):
        assert DesignCache(tmp_path / "never-created").entries() == []

    def test_version_mismatch_is_miss_and_deletes(self, tmp_path):
        cache = DesignCache(tmp_path)
        payload = {"version": "0.0.0-old", "key": "key9", "value": 42}
        path = cache._path("key9")
        path.write_bytes(pickle.dumps(payload))
        assert cache.get("key9") is MISS
        assert not path.exists()  # stale entry evicted, rewrite starts clean
        assert cache.misses == 1 and cache.hits == 0

    def test_truncated_pickle_is_miss_and_deletes(self, tmp_path):
        cache = DesignCache(tmp_path)
        cache.put("keyA", list(range(1000)))
        path = cache._path("keyA")
        path.write_bytes(path.read_bytes()[:20])
        assert cache.get("keyA") is MISS
        assert not path.exists()

    def test_unpicklable_value_swallowed(self, tmp_path):
        cache = DesignCache(tmp_path)
        assert cache.put("keyB", lambda: None) is False  # not picklable
        assert cache.get("keyB") is MISS
        assert list(tmp_path.glob("*.tmp")) == []  # temp file cleaned up

    def test_concurrent_writers_atomic(self, tmp_path):
        """Threads hammering put/get on one key never corrupt the entry:
        readers see MISS or a complete value, never a torn pickle, and no
        .tmp litter survives."""
        import threading

        cache = DesignCache(tmp_path)
        errors = []
        seen = []

        def writer(worker):
            try:
                for i in range(25):
                    cache.put("shared", {"worker": worker, "i": i,
                                         "pad": list(range(200))})
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        def reader():
            try:
                for _ in range(50):
                    value = cache.get("shared")
                    if value is not MISS:
                        assert value["pad"] == list(range(200))
                        seen.append(value)
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        final = cache.get("shared")
        assert final is not MISS and final["pad"] == list(range(200))
        assert list(tmp_path.glob("*.tmp")) == []

    def test_corruption_recovery_under_concurrent_writers(self, tmp_path):
        """A corrupter truncating the entry while writers rewrite it:
        readers see MISS or a complete value (the torn pickle is evicted,
        never returned), and the entry is fully restored afterwards."""
        import threading

        cache = DesignCache(tmp_path)
        path = cache._path("shared")
        cache.put("shared", {"i": -1, "pad": list(range(200))})
        errors = []

        def writer(worker):
            try:
                for i in range(25):
                    cache.put("shared", {"worker": worker, "i": i,
                                         "pad": list(range(200))})
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        def corrupter():
            try:
                for _ in range(25):
                    try:
                        data = path.read_bytes()
                        path.write_bytes(data[: max(1, len(data) // 3)])
                    except OSError:
                        pass  # entry mid-replace or already evicted
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        def reader():
            try:
                for _ in range(60):
                    value = cache.get("shared")
                    if value is not MISS:
                        assert value["pad"] == list(range(200))
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(3)]
        threads += [threading.Thread(target=corrupter)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        cache.put("shared", {"i": "final", "pad": list(range(200))})
        final = cache.get("shared")
        assert final is not MISS and final["i"] == "final"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_stale_version_overwritten_under_concurrent_readers(self,
                                                                tmp_path):
        """A stale-version payload appearing mid-stream (an older process
        writing the same key) is evicted by whichever reader sees it first;
        concurrent readers never propagate the stale value."""
        import threading

        cache = DesignCache(tmp_path)
        path = cache._path("shared")
        stale = pickle.dumps({"version": "0.0.0-old", "key": "shared",
                              "value": "stale"})
        errors = []

        def old_process():
            try:
                for _ in range(25):
                    try:
                        path.write_bytes(stale)
                    except OSError:
                        pass
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        def reader():
            try:
                for _ in range(60):
                    value = cache.get("shared")
                    assert value is MISS or value == "fresh"
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        def writer():
            try:
                for _ in range(25):
                    cache.put("shared", "fresh")
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=old_process),
                   threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        cache.put("shared", "fresh")
        assert cache.get("shared") == "fresh"


class TestContextCaching:
    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("design-cache")

    def test_characterization_round_trip(self, cache_dir):
        from repro.experiments import DesignContext

        cold = DesignContext.create(samples_per_program=40, seed=5,
                                    cache=cache_dir)
        assert cold.cache.misses >= 1
        warm = DesignContext.create(samples_per_program=40, seed=5,
                                    cache=cache_dir)
        assert warm.cache.hits >= 1 and warm.cache.misses == 0
        assert (
            warm.characterization.output_ranges
            == cold.characterization.output_ranges
        )

    def test_designs_cached_and_equivalent(self, cache_dir):
        import numpy as np

        from repro.experiments import DesignContext

        cold = DesignContext.create(samples_per_program=40, seed=5,
                                    cache=cache_dir)
        design = cold.get_hw_design()
        warm = DesignContext.create(samples_per_program=40, seed=5,
                                    cache=cache_dir)
        hits_before = warm.cache.hits
        cached = warm.get_hw_design()
        assert warm.cache.hits == hits_before + 1
        assert np.array_equal(
            cached.controller.state_machine.A, design.controller.state_machine.A
        )

    def test_variant_overrides_get_distinct_keys(self, cache_dir):
        from repro.experiments import DesignContext

        ctx = DesignContext.create(samples_per_program=40, seed=5,
                                   cache=cache_dir)
        ctx.get_hw_design()
        entries_before = len(ctx.cache.entries())
        variant = ctx.variant(guardband_override=2.5)
        variant.get_hw_design()
        assert len(ctx.cache.entries()) == entries_before + 1

    def test_no_cache_still_works(self):
        from repro.experiments import DesignContext

        ctx = DesignContext.create(samples_per_program=40, seed=5, cache=None)
        assert ctx.cache is None
        assert ctx.get_hw_design() is not None


class TestCacheCLI:
    def test_info_and_clear(self, tmp_path, capsys):
        from repro.__main__ import main

        cache = DesignCache(tmp_path)
        cache.put("cccc", 7)
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out
        assert DesignCache(tmp_path).entries() == []
