"""Tests for the safe-mode supervisor state machine (repro.core.supervisor)."""

import numpy as np
import pytest

from repro.board import BIG, LITTLE, Board, default_xu3_spec
from repro.core import (
    DEGRADED,
    NOMINAL,
    RECOVERING,
    MultilayerCoordinator,
    Supervisor,
    SupervisorConfig,
)
from repro.faults import FaultEvent, FaultInjector
from repro.workloads import Application, Phase

PERIOD_STEPS = 10


class EchoHW:
    """Scripted HW controller: replays a sequence, then echoes board state.

    Echoing the achieved state back as the command makes every period pass
    the read-back check, so individual monitors can be staged in isolation.
    """

    def __init__(self, board, sequence=()):
        self.board = board
        self.sequence = list(sequence)
        self.resets = 0
        self.guardband_exhausted = False

    def set_targets(self, targets):
        pass

    def step(self, outputs, externals):
        if self.sequence:
            return list(self.sequence.pop(0))
        b = self.board
        return [
            b.clusters[BIG].cores_on,
            b.clusters[LITTLE].cores_on,
            b.clusters[BIG].frequency,
            b.clusters[LITTLE].frequency,
        ]

    def reset(self):
        self.resets += 1
        self.guardband_exhausted = False


class EchoHWNoFlag(EchoHW):
    """Echo controller *without* a ``guardband_exhausted`` attribute, so the
    supervisor's own monitors (not the coordinator's flag path) are under
    test."""

    def __init__(self, board, sequence=()):
        super().__init__(board, sequence)
        del self.guardband_exhausted

    def reset(self):
        self.resets += 1


def _board(seed=1):
    app = Application("tiny", [Phase("p", 4, 200.0, mpki=0.5)])
    board = Board(app, spec=default_xu3_spec(), seed=seed, record=False)
    # A moderate operating point: the scripted echo controller holds state
    # rather than regulating, so the boot state must not be one the stock
    # firmware would legitimately throttle (4 big cores flat out).
    board.set_active_cores(BIG, 2)
    board.set_cluster_frequency(BIG, 1.0)
    board.set_cluster_frequency(LITTLE, 0.8)
    return board


def _supervised(board, hw, config=None):
    primary = MultilayerCoordinator(hw)
    return Supervisor(primary, board.spec, config=config)


def _run(board, supervisor, periods, injector=None):
    for _ in range(periods):
        for _ in range(PERIOD_STEPS):
            board.step()
            if injector is not None:
                injector.advance()
        supervisor.control_step(board, PERIOD_STEPS)


class TestNoFalseTrips:
    def test_fault_free_run_stays_nominal(self):
        board = _board()
        supervisor = _supervised(board, EchoHW(board))
        _run(board, supervisor, 30)
        assert supervisor.state == NOMINAL
        assert not supervisor.tripped
        assert supervisor.events == []
        assert supervisor.time_degraded == 0.0


class TestTrips:
    def test_nan_actuation_trips_immediately(self):
        board = _board()
        nan_cmd = [4, 4, float("nan"), 0.9]
        supervisor = _supervised(board, EchoHW(board, sequence=[nan_cmd]))
        _run(board, supervisor, 1)
        assert supervisor.state == DEGRADED
        assert supervisor.events[0].reason == "nan-actuation"

    def test_guardband_exhausted_flag_trips(self):
        board = _board()
        hw = EchoHW(board)
        supervisor = _supervised(board, hw)
        _run(board, supervisor, 2)
        hw.guardband_exhausted = True
        _run(board, supervisor, 1)
        assert supervisor.state == DEGRADED
        assert supervisor.events[0].reason == "guardband-exhausted"

    def test_sensor_dropout_trips_after_streak(self):
        board = _board()
        config = SupervisorConfig(dropout_trip_periods=3)
        supervisor = _supervised(board, EchoHWNoFlag(board), config=config)
        injector = FaultInjector(board, FaultEvent("temp-dropout", start=0.0))
        injector.advance()
        _run(board, supervisor, 2)
        assert supervisor.state == NOMINAL  # streak not yet long enough
        _run(board, supervisor, 1)
        assert supervisor.state == DEGRADED
        assert supervisor.events[0].reason == "sensor-dropout"

    def test_firmware_override_trips_after_streak(self):
        board = _board()

        class StuckEmergency:
            def __init__(self):
                self.state = type(
                    "S", (), {"any_active": True, "trip_count": 1}
                )()

            def update(self, *args, **kwargs):
                return self.state

            def frequency_cap(self, name):
                return None

            def core_cap(self, name):
                return None

        board.emergency = StuckEmergency()
        config = SupervisorConfig(override_trip_periods=4)
        supervisor = _supervised(board, EchoHWNoFlag(board), config=config)
        _run(board, supervisor, 3)
        assert supervisor.state == NOMINAL
        _run(board, supervisor, 1)
        assert supervisor.state == DEGRADED
        assert supervisor.events[0].reason == "firmware-override"

    def test_actuation_readback_trips_with_bounded_retry(self):
        board = _board()
        board.set_cluster_frequency(BIG, 1.0)
        # Command 1.5 GHz every period while DVFS writes are ignored.
        cmd = [4, 4, 1.5, 0.9]
        config = SupervisorConfig(readback_retries=2, readback_trip_periods=3)
        supervisor = _supervised(
            board, EchoHWNoFlag(board, sequence=[cmd] * 50), config=config
        )
        injector = FaultInjector(
            board, FaultEvent("dvfs-ignored", start=0.0, cluster=BIG)
        )
        injector.advance()
        _run(board, supervisor, 3)
        assert supervisor.state == DEGRADED
        assert supervisor.events[0].reason == "actuation-readback"
        # Each mismatched period burned the configured number of retries.
        assert supervisor.counters["readback-retries"] >= 2

    def test_rejected_actuation_trips_after_streak(self):
        board = _board()
        # Persistently out-of-range frequency: the board clamps (and counts)
        # it, so the read-back matches but the rejection counter climbs.
        cmd = [4, 4, 5.0, 0.9]
        config = SupervisorConfig(rejected_trip_periods=3)
        supervisor = _supervised(
            board, EchoHWNoFlag(board, sequence=[cmd] * 50), config=config
        )
        _run(board, supervisor, 3)
        assert supervisor.state == DEGRADED
        assert supervisor.events[0].reason == "rejected-actuation"
        assert board.rejected_actuations["frequency"] >= 3

    def test_railed_actuation_trips_under_violation(self):
        board = _board()
        # Sensor reads far above the limit while the command rails at the
        # bottom of the frequency grid: the plant is not responding.
        injector = FaultInjector(
            board, FaultEvent("temp-bias", start=0.0, magnitude=60.0)
        )
        injector.advance()
        rail = [1, 1, 0.2, 0.2]
        config = SupervisorConfig(railed_trip_periods=4)
        supervisor = _supervised(
            board, EchoHWNoFlag(board, sequence=[rail] * 50), config=config
        )
        _run(board, supervisor, 4, injector=injector)
        assert supervisor.state == DEGRADED
        assert supervisor.events[0].reason == "railed-actuation"


class TestDegradedMode:
    def test_fallback_engages_on_trip(self):
        from repro.baselines.heuristics import CoordinatedHeuristicHW

        board = _board()
        hw = EchoHW(board, sequence=[[4, 4, float("nan"), 0.9]])
        supervisor = _supervised(board, hw)
        _run(board, supervisor, 1)
        assert supervisor.state == DEGRADED
        active = supervisor.active_coordinator
        assert isinstance(active.hw_controller, CoordinatedHeuristicHW)
        _run(board, supervisor, 2)  # fallback drives the board without issue
        assert len(active.records) >= 2

    def test_probation_repromotes_and_resets_primary(self):
        board = _board()
        config = SupervisorConfig(
            dropout_trip_periods=2,
            min_degraded_periods=2,
            stable_periods=2,
            probation_periods=2,
        )
        hw = EchoHW(board)
        supervisor = _supervised(board, hw, config=config)
        injector = FaultInjector(
            board, FaultEvent("temp-dropout", start=0.0, duration=2.0)
        )
        injector.advance()
        _run(board, supervisor, 2, injector=injector)
        assert supervisor.state == DEGRADED
        _run(board, supervisor, 20, injector=injector)
        assert supervisor.state == NOMINAL
        transitions = [e.transition for e in supervisor.events]
        assert transitions == [
            "NOMINAL->DEGRADED",
            "DEGRADED->RECOVERING",
            "RECOVERING->NOMINAL",
        ]
        assert hw.resets >= 1  # primary got a clean slate before probation
        assert supervisor.time_degraded > 0.0

    def test_unclean_probation_demotes_with_backoff(self):
        board = _board()
        config = SupervisorConfig(
            dropout_trip_periods=2,
            min_degraded_periods=2,
            stable_periods=2,
            probation_periods=50,  # long probation: fault returns during it
        )
        supervisor = _supervised(board, EchoHWNoFlag(board), config=config)
        # Permanent dropout: every probation attempt sees dirty periods.
        injector = FaultInjector(board, FaultEvent("temp-dropout", start=0.0))
        injector.advance()
        _run(board, supervisor, 30, injector=injector)
        assert supervisor.state == DEGRADED
        demotions = [
            e for e in supervisor.events if e.transition == "RECOVERING->DEGRADED"
        ]
        assert not demotions or supervisor.counters["sensor-dropout"] >= 1
        assert supervisor.tripped and not supervisor.recovered


class TestRepromotionBackoff:
    """Edge cases of the exponential re-promotion backoff (white-box:
    the state machine is driven through ``_advance_state`` directly so
    each demotion count can be staged exactly)."""

    @staticmethod
    def _degraded_supervisor(demotions, stable_periods=2):
        board = _board()
        config = SupervisorConfig(min_degraded_periods=1,
                                  stable_periods=stable_periods,
                                  probation_periods=3)
        supervisor = _supervised(board, EchoHW(board), config=config)
        supervisor.state = DEGRADED
        supervisor._demotions = demotions
        return board, supervisor

    def _periods_until_repromotion(self, demotions):
        board, supervisor = self._degraded_supervisor(demotions)
        for period in range(1, 200):
            supervisor._advance_state(board, None, True)
            if supervisor.state == RECOVERING:
                return period
        raise AssertionError("never re-promoted")  # pragma: no cover

    def test_required_window_doubles_per_demotion(self):
        assert self._periods_until_repromotion(0) == 2
        assert self._periods_until_repromotion(1) == 4
        assert self._periods_until_repromotion(2) == 8
        assert self._periods_until_repromotion(3) == 16

    def test_backoff_saturates_at_eight_x(self):
        # Beyond 3 demotions the window must stop growing: a flaky fault
        # that demotes ten times still gets a bounded (8x) retry window,
        # not a multi-hour exile in DEGRADED.
        saturated = self._periods_until_repromotion(3)
        assert self._periods_until_repromotion(5) == saturated
        assert self._periods_until_repromotion(50) == saturated

    def test_unclean_period_resets_the_streak_not_the_backoff(self):
        board, supervisor = self._degraded_supervisor(demotions=1)
        for _ in range(3):  # one clean period short of the 4 required
            supervisor._advance_state(board, None, True)
        supervisor._advance_state(board, None, False)  # dirty period
        assert supervisor.state == DEGRADED
        for _ in range(3):
            supervisor._advance_state(board, None, True)
        assert supervisor.state == DEGRADED  # streak restarted from zero
        supervisor._advance_state(board, None, True)
        assert supervisor.state == RECOVERING

    def test_probation_reentry_pays_the_doubled_window(self):
        # DEGRADED -> RECOVERING -> (dirty probation) -> DEGRADED must both
        # count the demotion and restart the clean streak, so the second
        # attempt needs twice the window of the first.
        board, supervisor = self._degraded_supervisor(demotions=0)
        supervisor._advance_state(board, None, True)
        supervisor._advance_state(board, None, True)
        assert supervisor.state == RECOVERING
        supervisor._advance_state(board, None, False)  # probation violated
        assert supervisor.state == DEGRADED
        assert supervisor._demotions == 1
        assert supervisor._clean_streak == 0
        periods = 0
        while supervisor.state == DEGRADED:
            supervisor._advance_state(board, None, True)
            periods += 1
        assert periods == 4  # 2 * stable_periods after one demotion

    def test_successful_probation_clears_the_demotion_count(self):
        board, supervisor = self._degraded_supervisor(demotions=3)
        while supervisor.state == DEGRADED:
            supervisor._advance_state(board, None, True)
        assert supervisor.state == RECOVERING
        for _ in range(3):  # probation_periods
            supervisor._advance_state(board, None, True)
        assert supervisor.state == NOMINAL
        assert supervisor._demotions == 0  # next trip starts at 1x again
