"""Tests for the experiment harness: metrics, schemes, runner, figures."""

import numpy as np
import pytest

from repro.experiments import (
    COORDINATED_HEURISTIC,
    SCHEMES,
    YUKTA_HW_SSV_OS_SSV,
    build_session,
    instantiate_workload,
    normalize_to,
    oscillation_stats,
    run_workload,
    scheme_descriptions,
)
from repro.experiments.metrics import RunMetrics
from repro.experiments.report import render_bars, render_series, render_table


class TestMetrics:
    def test_exd_product(self):
        m = RunMetrics("s", "w", execution_time=10.0, energy=50.0, completed=True)
        assert m.exd == pytest.approx(500.0)
        assert m.ed2 == pytest.approx(5000.0)

    def test_normalize(self):
        metrics = {
            "base": RunMetrics("base", "w", 10.0, 50.0, True),
            "other": RunMetrics("other", "w", 20.0, 50.0, True),
        }
        norm = normalize_to(metrics, "base")
        assert norm["base"] == pytest.approx(1.0)
        assert norm["other"] == pytest.approx(2.0)

    def test_normalize_rejects_zero_baseline(self):
        metrics = {"base": RunMetrics("base", "w", 0.0, 0.0, True)}
        with pytest.raises(ValueError):
            normalize_to(metrics, "base")

    def test_oscillation_stats_counts_peaks(self):
        series = np.array([1.0, 4.0, 1.0, 4.0, 1.0, 4.0, 1.0, 1.0] * 4)
        stats = oscillation_stats(series, limit=3.0)
        assert stats["peaks_over_limit"] >= 3
        assert stats["ripple"] > 0

    def test_oscillation_stats_flat_series(self):
        stats = oscillation_stats(np.full(100, 2.0), limit=3.0)
        assert stats["peaks_over_limit"] == 0
        assert stats["ripple"] == pytest.approx(0.0, abs=1e-9)


class TestReport:
    def test_table_alignment(self):
        text = render_table(["a", "bb"], [["x", 1.0], ["yy", 2.5]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "|" in lines[1]

    def test_bars_include_values(self):
        text = render_bars(["one", "two"], [1.0, 0.5])
        assert "1.00" in text
        assert "0.50" in text

    def test_series_renders(self):
        t = np.linspace(0, 10, 100)
        text = render_series(t, np.sin(t), "wave", width=40, height=6)
        assert "wave" in text
        assert "*" in text


class TestSchemes:
    def test_registry_complete(self):
        descriptions = scheme_descriptions()
        assert set(descriptions) == set(SCHEMES)
        assert len(SCHEMES) == 6

    def test_unknown_scheme_rejected(self, design_context):
        with pytest.raises(KeyError):
            build_session("nope", design_context)

    def test_instantiate_workload_variants(self):
        assert len(instantiate_workload("mcf")) == 1
        assert len(instantiate_workload("blmc")) == 2
        apps = instantiate_workload("gamess")
        assert len(instantiate_workload(apps)) == 1


@pytest.mark.slow
class TestRunnerIntegration:
    def test_sessions_for_all_schemes(self, design_context):
        for scheme in SCHEMES:
            session = build_session(scheme, design_context)
            assert session.hw_controller is not None

    def test_sessions_are_independent(self, design_context):
        a = build_session(YUKTA_HW_SSV_OS_SSV, design_context)
        b = build_session(YUKTA_HW_SSV_OS_SSV, design_context)
        a.hw_controller.state[:] = 99.0
        assert not np.any(b.hw_controller.state == 99.0)

    def test_run_workload_completes(self, design_context):
        metrics = run_workload(COORDINATED_HEURISTIC, "h264ref", design_context,
                               record=True)
        assert metrics.completed
        assert metrics.energy > 0
        assert "power_big" in metrics.trace

    def test_yukta_run_respects_limits_on_average(self, design_context):
        metrics = run_workload(YUKTA_HW_SSV_OS_SSV, "gamess", design_context,
                               record=True)
        assert metrics.completed
        spec = design_context.spec
        steady = metrics.trace["power_big"][len(metrics.trace["power_big"]) // 3:]
        assert steady.mean() < spec.power_limit_big * 1.05
        temps = metrics.trace["temperature"]
        assert temps.mean() < spec.temp_limit + 2.0

    def test_monolithic_runs(self, design_context):
        metrics = run_workload("monolithic-lqg", "h264ref", design_context)
        assert metrics.completed

    def test_determinism(self, design_context):
        a = run_workload(COORDINATED_HEURISTIC, "h264ref", design_context, seed=5)
        b = run_workload(COORDINATED_HEURISTIC, "h264ref", design_context, seed=5)
        assert a.exd == pytest.approx(b.exd)
