"""End-to-end integration: the paper's qualitative claims on a small scale.

These are the load-bearing shape checks from DESIGN.md Sec. 6, run on the
shared session context: SSV control quality (no limit violations, low
ripple), decoupled destructive interference (emergency trips), and the
design pipeline's structural guarantees.
"""

import numpy as np
import pytest

from repro.experiments import (
    COORDINATED_HEURISTIC,
    DECOUPLED_HEURISTIC,
    YUKTA_HW_SSV_OS_SSV,
    run_workload,
)
from repro.experiments.metrics import oscillation_stats

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def blackscholes_runs(design_context):
    runs = {}
    for scheme in (COORDINATED_HEURISTIC, DECOUPLED_HEURISTIC,
                   YUKTA_HW_SSV_OS_SSV):
        runs[scheme] = run_workload(scheme, "blackscholes", design_context,
                                    record=True)
    return runs


class TestControlQuality:
    """The Fig. 10/11 headline: SSV control eliminates limit violations."""

    def test_all_schemes_complete(self, blackscholes_runs):
        for metrics in blackscholes_runs.values():
            assert metrics.completed

    def test_decoupled_trips_emergency_yukta_does_not(self, blackscholes_runs):
        assert blackscholes_runs[DECOUPLED_HEURISTIC].notes["emergency_trips"] > 0
        assert blackscholes_runs[YUKTA_HW_SSV_OS_SSV].notes["emergency_trips"] == 0

    def test_yukta_has_least_power_ripple(self, blackscholes_runs, design_context):
        limit = design_context.spec.power_limit_big
        stats = {
            scheme: oscillation_stats(m.trace["power_big"], limit=limit)
            for scheme, m in blackscholes_runs.items()
        }
        yukta = stats[YUKTA_HW_SSV_OS_SSV]
        decoupled = stats[DECOUPLED_HEURISTIC]
        assert yukta["ripple"] < decoupled["ripple"]
        assert yukta["peaks_over_limit"] <= decoupled["peaks_over_limit"]

    def test_yukta_respects_limits_in_steady_state(self, blackscholes_runs,
                                                   design_context):
        trace = blackscholes_runs[YUKTA_HW_SSV_OS_SSV].trace
        spec = design_context.spec
        half = len(trace["power_big"]) // 2
        assert trace["power_big"][half:].mean() <= spec.power_limit_big
        assert trace["temperature"][half:].max() <= spec.emergency_temp_trip


class TestDesignPipelineStructure:
    def test_runtime_matches_paper_dimensions(self, hw_design, sw_design):
        hw_sm = hw_design.controller.state_machine
        sw_sm = sw_design.controller.state_machine
        assert hw_sm.n_states <= 20 and hw_sm.is_stable()
        assert sw_sm.n_states <= 20 and sw_sm.is_stable()
        assert (hw_sm.n_inputs, hw_sm.n_outputs) == (7, 4)
        assert (sw_sm.n_inputs, sw_sm.n_outputs) == (7, 3)

    def test_synthesis_closed_loops_verified(self, hw_design, sw_design):
        for design in (hw_design, sw_design):
            hinf = design.dk_result.hinf
            assert hinf.closed_loop.is_stable()
            assert hinf.achieved_norm <= hinf.gamma * 1.02

    def test_mu_bounds_consistent(self, hw_design):
        mu = hw_design.dk_result.mu
        assert np.all(mu.lower <= mu.upper + 1e-6)
        assert mu.peak_upper == pytest.approx(mu.upper.max())

    def test_controllers_emit_legal_actuation(self, hw_design):
        import copy

        ctrl = copy.deepcopy(hw_design.controller)
        ctrl.reset()
        rng = np.random.default_rng(0)
        for _ in range(40):
            outputs = [
                rng.uniform(0.5, 8.0), rng.uniform(0.2, 6.0),
                rng.uniform(0.02, 0.6), rng.uniform(45, 85),
            ]
            u = ctrl.step(outputs, [rng.uniform(0, 8), rng.uniform(1, 4),
                                    rng.uniform(1, 4)])
            for value, allowed in zip(u, ctrl.input_ranges):
                assert allowed.contains(value)
