"""Fault-tolerant campaign execution: checkpoint/resume, supervision, chaos.

The chaos-smoke CI job runs this file with
``REPRO_CHAOS_ARTIFACT_DIR=chaos-artifacts``; the acceptance tests copy
their checkpoint directories there so a failing run uploads the journal
it was resuming from.
"""

import json
import os
import shutil
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cache import MISS
from repro.runtime import (
    CellExecutionError,
    CellFailure,
    ChaosError,
    ChaosPolicy,
    CheckpointJournal,
    ExecutionPolicy,
    RetryPolicy,
    activate_policy,
    active_policy,
    corrupt_checkpoint_entry,
    deactivate_policy,
    supervised_map,
    task_key,
)

SCHEMES = ["coordinated-heuristic", "decoupled-heuristic"]
WORKLOADS = ["blackscholes", "gamess"]
MAX_TIME = 60.0

# Fast backoff so retry-path tests stay sub-second.
FAST = dict(backoff_base=0.01, backoff_max=0.05, jitter=0.0)


def _export_artifacts(src, name):
    """Copy a checkpoint directory into $REPRO_CHAOS_ARTIFACT_DIR (CI)."""
    root = os.environ.get("REPRO_CHAOS_ARTIFACT_DIR")
    if not root:
        return
    dest = os.path.join(root, name)
    shutil.rmtree(dest, ignore_errors=True)
    shutil.copytree(src, dest, dirs_exist_ok=True)


# ---------------------------------------------------------------------------
# Task fingerprints
# ---------------------------------------------------------------------------


def _fn_a(context, x):
    return x + 1


def _fn_b(context, x):
    return x + 2


class TestTaskKeys:
    CONTEXT = SimpleNamespace(char_fingerprint="abc123", overrides={})

    def test_same_cell_same_key(self):
        task = ("cell", ("coordinated-heuristic", "mcf", 7, 60.0, False))
        assert task_key(self.CONTEXT, task) == task_key(self.CONTEXT, task)

    def test_cell_parameters_differentiate(self):
        base = ("coordinated-heuristic", "mcf", 7, 60.0, False)
        keys = {
            task_key(self.CONTEXT, ("cell", base)),
            task_key(self.CONTEXT, ("cell", base[:2] + (8, 60.0, False))),
            task_key(self.CONTEXT, ("cell", base[:3] + (90.0, False))),
            task_key(self.CONTEXT, ("cell", base[:4] + (True,))),
        }
        assert len(keys) == 4

    def test_context_identity_differentiates(self):
        other = SimpleNamespace(char_fingerprint="def456", overrides={})
        task = ("cell", ("coordinated-heuristic", "mcf", 7, 60.0, False))
        assert task_key(self.CONTEXT, task) != task_key(other, task)

    def test_call_tasks_keyed_by_function_and_args(self):
        key_a1 = task_key(self.CONTEXT, ("call", (_fn_a, (1,), {})))
        key_a2 = task_key(self.CONTEXT, ("call", (_fn_a, (2,), {})))
        key_b1 = task_key(self.CONTEXT, ("call", (_fn_b, (1,), {})))
        assert len({key_a1, key_a2, key_b1}) == 3
        assert key_a1 == task_key(self.CONTEXT, ("call", (_fn_a, (1,), {})))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown task kind"):
            task_key(self.CONTEXT, ("bogus", ()))


# ---------------------------------------------------------------------------
# Checkpoint journal
# ---------------------------------------------------------------------------


class TestCheckpointJournal:
    KEY = "k" * 64

    def test_roundtrip_bit_exact(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        trace = np.random.default_rng(3).normal(size=257)
        journal.record(self.KEY, {"trace": trace, "energy": 1.0 / 3.0})
        reader = CheckpointJournal(tmp_path)
        value = reader.get(self.KEY)
        assert value["energy"] == 1.0 / 3.0
        assert value["trace"].dtype == trace.dtype
        assert np.array_equal(value["trace"], trace)
        assert reader.stats()["resumed"] == 1

    def test_missing_key_is_miss(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        assert journal.get("0" * 64) is MISS
        assert journal.index() == {}

    def test_last_record_wins(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record(self.KEY, "first")
        journal.record(self.KEY, "second")
        entries = journal.index()
        assert set(entries) == {self.KEY}
        assert journal.get(self.KEY, entries[self.KEY]["sha256"]) == "second"

    def test_torn_journal_tail_skipped(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record(self.KEY, "value", meta={"label": "cell-0"})
        with open(journal.journal_path, "a") as fh:
            fh.write('{"key": "torn-write-no-clos')  # killed mid-append
        entries = journal.index()
        assert set(entries) == {self.KEY}
        assert journal.get(self.KEY, entries[self.KEY]["sha256"]) == "value"

    def test_digest_mismatch_is_miss(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record(self.KEY, "value")
        sha = journal.index()[self.KEY]["sha256"]
        assert journal.get(self.KEY, "0" * 64) is MISS
        assert journal.get(self.KEY, sha) == "value"

    @pytest.mark.parametrize("mode", ["truncate", "garbage", "unlink"])
    def test_corruption_detected_as_miss(self, tmp_path, mode):
        journal = CheckpointJournal(tmp_path)
        journal.record(self.KEY, {"trace": np.arange(64.0)})
        sha = journal.index()[self.KEY]["sha256"]
        corrupt_checkpoint_entry(journal, self.KEY, mode=mode)
        reader = CheckpointJournal(tmp_path)
        assert reader.get(self.KEY, sha) is MISS
        assert reader.stats()["corrupt"] == 1

    def test_payload_written_before_journal_line(self, tmp_path):
        # Durability ordering: a key in the journal implies its payload
        # file exists (the converse — orphan payloads — is allowed).
        journal = CheckpointJournal(tmp_path)
        journal.record(self.KEY, "value")
        for key in journal.index():
            assert journal._cell_path(key).is_file()

    def test_atomic_payloads_leave_no_temp_files(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        for i in range(5):
            journal.record(f"{i:064d}", {"i": i})
        assert list(journal.cells_dir.glob("*.tmp")) == []

    def test_clear(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record(self.KEY, "value")
        assert journal.clear() == 1
        assert journal.index() == {}
        assert not journal.journal_path.exists()

    def test_resolve(self, tmp_path):
        assert CheckpointJournal.resolve(None) is None
        assert CheckpointJournal.resolve(False) is None
        journal = CheckpointJournal(tmp_path)
        assert CheckpointJournal.resolve(journal) is journal
        opened = CheckpointJournal.resolve(str(tmp_path))
        assert isinstance(opened, CheckpointJournal)
        assert opened.root == journal.root


# ---------------------------------------------------------------------------
# Chaos policy
# ---------------------------------------------------------------------------


class TestChaosPolicy:
    def test_scripted_error_fires_on_first_attempt_only(self):
        chaos = ChaosPolicy(error_cells=(2,))
        chaos.apply(1, 0, in_process=True)  # other cells untouched
        with pytest.raises(ChaosError):
            chaos.apply(2, 0, in_process=True)
        chaos.apply(2, 1, in_process=True)  # retry is clean
        assert chaos.injected == {"error": 1}

    def test_scripted_error_every_attempt_when_unrestricted(self):
        chaos = ChaosPolicy(error_cells=(0,), first_attempt_only=False)
        for attempt in range(3):
            with pytest.raises(ChaosError):
                chaos.apply(0, attempt, in_process=True)

    def test_in_process_kill_becomes_error(self):
        chaos = ChaosPolicy(kill_cells=(0,))
        with pytest.raises(ChaosError, match="simulated kill"):
            chaos.apply(0, 0, in_process=True)

    def test_probabilistic_draws_deterministic(self):
        a = ChaosPolicy(seed=5, error_prob=0.5)
        b = ChaosPolicy(seed=5, error_prob=0.5)
        verdicts = []
        for policy in (a, b):
            fired = []
            for index in range(32):
                try:
                    policy.apply(index, 0, in_process=True)
                except ChaosError:
                    fired.append(index)
            verdicts.append(fired)
        assert verdicts[0] == verdicts[1]
        assert 0 < len(verdicts[0]) < 32  # actually probabilistic

    def test_delay_is_benign(self):
        chaos = ChaosPolicy(delay_prob=1.0, delay_s=0.0)
        chaos.apply(0, 0, in_process=True)
        chaos.apply(0, 1, in_process=True)  # exempt from first_attempt_only
        assert chaos.injected["delay"] == 2


class TestRetryPolicy:
    def test_exponential_growth_saturates(self):
        policy = RetryPolicy(backoff_base=0.25, backoff_max=1.0, jitter=0.0)
        delays = [policy.delay(0, attempt) for attempt in range(6)]
        assert delays[:3] == [0.25, 0.5, 1.0]
        assert delays[3:] == [1.0, 1.0, 1.0]  # saturated at backoff_max

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.25)
        again = RetryPolicy(backoff_base=1.0, jitter=0.25)
        for attempt in range(4):
            delay = policy.delay(3, attempt)
            base = min(2.0 ** attempt, policy.backoff_max)
            assert base * 0.75 <= delay <= base * 1.25
            assert delay == again.delay(3, attempt)


# ---------------------------------------------------------------------------
# Supervised executor (call tasks: cheap, picklable)
# ---------------------------------------------------------------------------


def _square(context, x):
    return x * x


def _boom(context, x):
    raise RuntimeError(f"boom {x}")


def _touch_and_square(context, marker_dir, x):
    with open(os.path.join(marker_dir, "runs.log"), "a") as fh:
        fh.write(f"{x}\n")
    return x * x


class TestSupervisedMap:
    N = 6

    def _tasks(self):
        return [("call", (_square, (i,), {})) for i in range(self.N)]

    def test_chaos_error_retried_to_success(self, design_context):
        chaos = ChaosPolicy(error_cells=(1, 3))
        results = supervised_map(self._tasks(), design_context, jobs=2,
                                 retry=RetryPolicy(max_retries=2, **FAST),
                                 chaos=chaos)
        assert results == [i * i for i in range(self.N)]

    def test_survives_scripted_sigkills(self, design_context):
        chaos = ChaosPolicy(kill_cells=(0, 2, 4))
        results = supervised_map(self._tasks(), design_context, jobs=2,
                                 retry=RetryPolicy(max_retries=2, **FAST),
                                 chaos=chaos)
        assert results == [i * i for i in range(self.N)]

    def test_hang_detected_and_collected(self, design_context):
        chaos = ChaosPolicy(hang_cells=(1,), hang_s=20.0)
        t0 = time.monotonic()
        results = supervised_map(self._tasks(), design_context, jobs=2,
                                 cell_timeout=1.0,
                                 retry=RetryPolicy(max_retries=0),
                                 chaos=chaos, on_error="collect")
        assert time.monotonic() - t0 < 15.0  # killed, not waited out
        failure = results[1]
        assert isinstance(failure, CellFailure)
        assert failure.reason == "timeout"
        assert not failure.completed
        others = [results[i] for i in range(self.N) if i != 1]
        assert others == [i * i for i in range(self.N) if i != 1]

    def test_retry_exhaustion_collects_structured_failure(self,
                                                          design_context):
        chaos = ChaosPolicy(error_cells=(2,), first_attempt_only=False)
        results = supervised_map(self._tasks(), design_context, jobs=2,
                                 retry=RetryPolicy(max_retries=1, **FAST),
                                 chaos=chaos, on_error="collect")
        failure = results[2]
        assert isinstance(failure, CellFailure)
        assert failure.reason == "exception"
        assert failure.attempts == 2  # initial + 1 retry
        assert "ChaosError" in failure.error
        assert "failed after 2 attempt(s)" in failure.describe()

    def test_on_error_raise_propagates(self, design_context):
        chaos = ChaosPolicy(error_cells=(0,), first_attempt_only=False)
        with pytest.raises(CellExecutionError, match="ChaosError"):
            supervised_map(self._tasks(), design_context, jobs=2,
                           retry=RetryPolicy(max_retries=0),
                           chaos=chaos, on_error="raise")

    def test_progress_stays_task_ordered_under_chaos(self, design_context):
        chaos = ChaosPolicy(kill_cells=(3,), error_cells=(1,))
        seen = []
        supervised_map(self._tasks(), design_context, jobs=2,
                       retry=RetryPolicy(max_retries=2, **FAST),
                       chaos=chaos, progress=seen.append)
        assert seen == [i * i for i in range(self.N)]

    def test_serial_path_retries_in_process(self, design_context):
        chaos = ChaosPolicy(error_cells=(0, 5))
        results = supervised_map(self._tasks(), design_context, jobs=1,
                                 retry=RetryPolicy(max_retries=1, **FAST),
                                 chaos=chaos)
        assert results == [i * i for i in range(self.N)]

    def test_serial_path_collects_exhaustion(self, design_context):
        tasks = [("call", (_square, (0,), {})),
                 ("call", (_boom, (1,), {}))]
        results = supervised_map(tasks, design_context, jobs=1,
                                 retry=RetryPolicy(max_retries=1, **FAST),
                                 on_error="collect")
        assert results[0] == 0
        assert isinstance(results[1], CellFailure)
        assert results[1].attempts == 2

    def test_serial_path_raise_reraises_original(self, design_context):
        tasks = [("call", (_boom, (1,), {}))]
        with pytest.raises(RuntimeError, match="boom 1"):
            supervised_map(tasks, design_context, jobs=1,
                           retry=RetryPolicy(max_retries=0),
                           on_error="raise")


# ---------------------------------------------------------------------------
# Engine integration: checkpoint/resume + salvage through parallel_map
# ---------------------------------------------------------------------------


class TestEngineCheckpointing:
    def test_resume_skips_journaled_cells(self, design_context, tmp_path):
        from repro.experiments.engine import parallel_map

        marker = tmp_path / "markers"
        marker.mkdir()
        ckpt = tmp_path / "ckpt"
        tasks = [("call", (_touch_and_square, (str(marker), i), {}))
                 for i in range(4)]
        first = parallel_map(tasks, design_context, jobs=1, checkpoint=ckpt)
        assert first == [0, 1, 4, 9]
        log = (marker / "runs.log").read_text().splitlines()
        assert sorted(log) == ["0", "1", "2", "3"]

        resumed = parallel_map(tasks, design_context, jobs=1,
                               checkpoint=ckpt, resume=True)
        assert resumed == first
        # No cell re-executed: the marker log did not grow.
        assert (marker / "runs.log").read_text().splitlines() == log

    def test_resume_reruns_only_missing_cells(self, design_context,
                                              tmp_path):
        from repro.experiments.engine import parallel_map

        marker = tmp_path / "markers"
        marker.mkdir()
        ckpt = tmp_path / "ckpt"
        tasks = [("call", (_touch_and_square, (str(marker), i), {}))
                 for i in range(4)]
        parallel_map(tasks, design_context, jobs=1, checkpoint=ckpt)

        journal = CheckpointJournal(ckpt)
        victim = task_key(design_context, tasks[2])
        corrupt_checkpoint_entry(journal, victim, mode="garbage")

        resumed = parallel_map(tasks, design_context, jobs=1,
                               checkpoint=ckpt, resume=True)
        assert resumed == [0, 1, 4, 9]
        log = (marker / "runs.log").read_text().splitlines()
        assert log.count("2") == 2  # corrupted cell re-ran...
        assert len(log) == 5  # ...and nothing else did

    def test_resumed_cells_stream_in_task_order(self, design_context,
                                                tmp_path):
        from repro.experiments.engine import parallel_map

        tasks = [("call", (_square, (i,), {})) for i in range(4)]
        parallel_map(tasks, design_context, jobs=1,
                     checkpoint=tmp_path / "ckpt")
        seen = []
        parallel_map(tasks, design_context, jobs=1,
                     checkpoint=tmp_path / "ckpt", resume=True,
                     progress=seen.append)
        assert seen == [0, 1, 4, 9]


class TestPlainPoolSalvage:
    """Satellite fix: one raising cell must not discard completed siblings."""

    def test_collect_keeps_siblings(self, design_context):
        from repro.experiments.engine import parallel_map

        tasks = [("call", (_square, (0,), {})),
                 ("call", (_boom, (1,), {})),
                 ("call", (_square, (2,), {}))]
        results = parallel_map(tasks, design_context, jobs=2,
                               on_error="collect")
        assert results[0] == 0
        assert results[2] == 4
        failure = results[1]
        assert isinstance(failure, CellFailure)
        assert failure.reason == "exception"
        assert "boom 1" in failure.error

    def test_default_still_raises(self, design_context):
        from repro.experiments.engine import parallel_map

        tasks = [("call", (_boom, (1,), {}))]
        with pytest.raises(RuntimeError, match="boom 1"):
            parallel_map(tasks, design_context, jobs=1)

    def test_matrix_collects_failures(self, design_context, monkeypatch):
        from repro.experiments import engine
        from repro.experiments.engine import run_matrix

        real = engine.run_workload

        def sabotaged(scheme, workload, context, **kwargs):
            if workload == "gamess":
                raise RuntimeError("sabotaged cell")
            return real(scheme, workload, context, **kwargs)

        monkeypatch.setattr(engine, "run_workload", sabotaged)
        matrix = run_matrix(["coordinated-heuristic"], WORKLOADS,
                            design_context, max_time=MAX_TIME, jobs=1)
        good = matrix["blackscholes"]["coordinated-heuristic"]
        assert not isinstance(good, CellFailure)
        assert good.execution_time > 0
        bad = matrix["gamess"]["coordinated-heuristic"]
        assert isinstance(bad, CellFailure)
        assert "sabotaged cell" in bad.error


class TestExecutionPolicy:
    def test_activation_scoping(self):
        assert active_policy() is None
        policy = ExecutionPolicy(max_retries=1)
        try:
            assert activate_policy(policy) is policy
            assert active_policy() is policy
            assert policy.supervised
        finally:
            deactivate_policy()
        assert active_policy() is None

    def test_supervised_detection(self):
        assert not ExecutionPolicy().supervised
        assert not ExecutionPolicy(checkpoint_dir="x").supervised
        assert ExecutionPolicy(cell_timeout=1.0).supervised
        assert ExecutionPolicy(max_retries=3).supervised
        assert ExecutionPolicy(chaos=ChaosPolicy()).supervised

    def test_policy_checkpoint_flows_into_engine(self, design_context,
                                                 tmp_path):
        from repro.experiments.engine import parallel_map

        tasks = [("call", (_square, (i,), {})) for i in range(3)]
        activate_policy(ExecutionPolicy(checkpoint_dir=str(tmp_path)))
        try:
            parallel_map(tasks, design_context, jobs=1)
        finally:
            deactivate_policy()
        assert len(CheckpointJournal(tmp_path).index()) == 3

    def test_cli_resume_requires_checkpoint_dir(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["design", "--resume"])


# ---------------------------------------------------------------------------
# Acceptance: the chaos matrix
# ---------------------------------------------------------------------------


class TestChaosMatrix:
    """ISSUE 6 acceptance: a matrix surviving >= 3 worker SIGKILLs plus one
    corrupted checkpoint entry completes with every cell either a result
    or a structured CellFailure, and resumes bit-identically."""

    def test_matrix_survives_kills_and_corruption(self, design_context,
                                                  tmp_path):
        from repro.experiments.engine import run_matrix
        from repro.experiments.runner import run_scheme_matrix

        ckpt = tmp_path / "ckpt"
        try:
            reference = run_scheme_matrix(SCHEMES, WORKLOADS, design_context,
                                          max_time=MAX_TIME)

            chaos = ChaosPolicy(kill_cells=(0, 1, 2))  # 3 scripted SIGKILLs
            stormy = run_matrix(SCHEMES, WORKLOADS, design_context,
                                max_time=MAX_TIME, jobs=2,
                                checkpoint=ckpt, chaos=chaos,
                                backoff=RetryPolicy(max_retries=2, **FAST),
                                on_error="collect")
            for workload in WORKLOADS:
                for scheme in SCHEMES:
                    cell = stormy[workload][scheme]
                    assert (isinstance(cell, CellFailure)
                            or cell.execution_time > 0)

            # Retries absorbed every kill: bit-identical to the serial run.
            for workload in WORKLOADS:
                for scheme in SCHEMES:
                    a = reference[workload][scheme]
                    b = stormy[workload][scheme]
                    assert not isinstance(b, CellFailure)
                    assert a.execution_time == b.execution_time
                    assert a.energy == b.energy

            # Corrupt one journaled cell, then resume with no chaos: only
            # the corrupted cell re-runs, and the stitched matrix is still
            # bit-identical.
            journal = CheckpointJournal(ckpt)
            victim = sorted(journal.completed_keys())[0]
            corrupt_checkpoint_entry(journal, victim, mode="truncate")

            fresh = CheckpointJournal(ckpt)
            resumed = run_matrix(SCHEMES, WORKLOADS, design_context,
                                 max_time=MAX_TIME, jobs=1,
                                 checkpoint=fresh, resume=True)
            assert fresh.resumed == len(SCHEMES) * len(WORKLOADS) - 1
            assert fresh.corrupt >= 1
            for workload in WORKLOADS:
                for scheme in SCHEMES:
                    a = reference[workload][scheme]
                    b = resumed[workload][scheme]
                    assert a.execution_time == b.execution_time
                    assert a.energy == b.energy
                    assert np.array_equal(a.trace.get("times", []),
                                          b.trace.get("times", []))
        finally:
            _export_artifacts(ckpt, "chaos-matrix")

    def test_exhausted_matrix_cell_salvaged(self, design_context, tmp_path):
        from repro.experiments.engine import run_matrix

        ckpt = tmp_path / "ckpt"
        try:
            chaos = ChaosPolicy(error_cells=(1,), first_attempt_only=False)
            matrix = run_matrix(SCHEMES, ["blackscholes"], design_context,
                                max_time=MAX_TIME, jobs=2,
                                checkpoint=ckpt, chaos=chaos,
                                backoff=RetryPolicy(max_retries=1, **FAST),
                                on_error="collect")
            cells = [matrix["blackscholes"][s] for s in SCHEMES]
            good = [c for c in cells if not isinstance(c, CellFailure)]
            bad = [c for c in cells if isinstance(c, CellFailure)]
            assert len(good) == 1 and len(bad) == 1
            assert bad[0].attempts == 2
            # Failures are never journaled, so a later resume retries them.
            journal = CheckpointJournal(ckpt)
            assert len(journal.completed_keys()) == 1
        finally:
            _export_artifacts(ckpt, "chaos-exhaustion")


class TestTelemetryCounters:
    def test_retry_and_checkpoint_counters(self, design_context, tmp_path):
        from repro.experiments.engine import parallel_map
        from repro.telemetry import TelemetrySession, activate, deactivate

        session = activate(TelemetrySession(tmp_path / "tel"))
        try:
            tasks = [("call", (_square, (i,), {})) for i in range(3)]
            chaos = ChaosPolicy(error_cells=(0,))
            parallel_map(tasks, design_context, jobs=1,
                         checkpoint=tmp_path / "ckpt",
                         backoff=RetryPolicy(max_retries=1, **FAST),
                         chaos=chaos, on_error="collect")
            parallel_map(tasks, design_context, jobs=1,
                         checkpoint=tmp_path / "ckpt", resume=True)
            snap = session.registry.to_dict()
        finally:
            deactivate()
        retries = {
            v["labels"]["reason"]: v["value"]
            for v in snap["cell_retries_total"]["values"]
        }
        assert retries["exception"] == 1.0
        events = {
            v["labels"]["event"]: v["value"]
            for v in snap["checkpoint_cells_total"]["values"]
        }
        assert events["recorded"] == 3.0
        assert events["resumed"] == 3.0


class TestResumeOracle:
    def test_oracle_resume_passes(self, design_context, tmp_path):
        from repro.verify.oracles import oracle_resume

        result = oracle_resume(design_context, max_time=8.0, jobs=2,
                               checkpoint_dir=str(tmp_path))
        assert result.agree, result.render()
        assert result.max_ulp == 0
        assert result.details["interrupted_cells"] >= 1
        assert result.details["resumed_cells"] >= 1
