"""Integration tests: telemetry wired through the board / loop / supervisor.

These use a spec-only :class:`DesignContext` with the heuristic scheme so no
controller synthesis is needed — each run is a few hundred milliseconds.
"""

import json

import numpy as np
import pytest

from repro.board import BIG, Board, default_xu3_spec
from repro.experiments.runner import run_workload
from repro.experiments.schemes import DesignContext
from repro.faults import FaultCampaign, FaultEvent
from repro.telemetry import TelemetrySession, activate, deactivate
from repro.workloads import make_application

SPAN_NAMES = {"sample", "optimize", "hw.step", "sw.step",
              "actuate.hw", "actuate.sw", "sim"}


@pytest.fixture(autouse=True)
def _no_global_session():
    deactivate()
    yield
    deactivate()


@pytest.fixture(scope="module")
def context():
    return DesignContext(spec=default_xu3_spec(), characterization=None)


# ----------------------------------------------------------------------
# The instrumented control loop
# ----------------------------------------------------------------------
class TestInstrumentedRun:
    def test_disabled_by_default(self, context):
        board = Board(make_application("gamess"), spec=default_xu3_spec(),
                      record=False)
        assert board.telemetry is None
        assert board.emergency.on_trip is None
        metrics = run_workload("coordinated-heuristic", "gamess", context,
                               max_time=5.0, record=False)
        assert metrics.execution_time > 0

    def test_run_workload_records_artifacts(self, context, tmp_path):
        out = tmp_path / "tel"
        session = TelemetrySession(out)
        run_workload("coordinated-heuristic", "gamess", context,
                     max_time=10.0, record=False, telemetry=session)
        periods = session.registry.value("control_periods_total")
        # 10 s / 0.5 s control period (+1 tolerance: sim-time accumulation)
        assert periods in (20, 21)
        assert session.period == periods
        exd = session.registry.get("exd_proxy").value
        assert np.isfinite(exd) and exd > 0
        assert session.registry.value("control_step_seconds") == periods
        assert session.registry.value("sim_period_seconds") == periods
        names = {r["name"] for r in session.tracer.spans}
        assert SPAN_NAMES <= names
        session.close()
        spans = [json.loads(line)
                 for line in (out / "spans.jsonl").read_text().splitlines()]
        assert len(spans) == session.tracer.span_count
        events = json.loads((out / "trace.json").read_text())
        assert len(events) == len(spans)
        assert "control_periods_total 20" in (out / "metrics.prom").read_text()

    def test_flight_ring_holds_recent_periods(self, context):
        session = TelemetrySession(flight_capacity=8)
        run_workload("coordinated-heuristic", "gamess", context,
                     max_time=10.0, record=False, telemetry=session)
        assert len(session.flight) == 8
        last = session.flight.last
        assert last["period"] == session.period
        assert set(last) >= {"period", "time", "signals", "actuation_hw",
                             "actuation_sw", "exd_proxy", "counters"}
        assert last["counters"]["rejected"]["frequency"] == 0
        session.close()

    def test_process_wide_session_reaches_run(self, context):
        session = activate(TelemetrySession())
        run_workload("coordinated-heuristic", "gamess", context,
                     max_time=5.0, record=False)
        assert session.registry.value("control_periods_total") >= 10
        session.close()


# ----------------------------------------------------------------------
# Board actuation-health counters (public accessor + metrics surface)
# ----------------------------------------------------------------------
class TestBoardCounters:
    def test_counters_accessor(self):
        board = Board(make_application("gamess"), spec=default_xu3_spec(),
                      record=False)
        counters = board.counters()
        assert counters["rejected"] == {"frequency": 0, "cores": 0,
                                        "placement": 0}
        assert counters["nonfinite"] == {"frequency": 0, "cores": 0,
                                         "placement": 0}
        board.set_cluster_frequency(BIG, 99.0)  # clamped
        board.set_cluster_frequency(BIG, float("nan"))  # dropped
        board.set_active_cores(BIG, -3)  # clamped
        counters = board.counters()
        assert counters["rejected"]["frequency"] == 2
        assert counters["nonfinite"]["frequency"] == 1
        assert counters["rejected"]["cores"] == 1
        assert counters["nonfinite"]["cores"] == 0
        # the snapshot is a copy, not a live view
        counters["rejected"]["frequency"] = 99
        assert board.counters()["rejected"]["frequency"] == 2
        board.reset_counters()
        assert board.counters()["rejected"] == {"frequency": 0, "cores": 0,
                                                "placement": 0}

    def test_counters_surface_in_metrics(self):
        session = TelemetrySession()
        board = Board(make_application("gamess"), spec=default_xu3_spec(),
                      record=False, telemetry=session)
        board.set_cluster_frequency(BIG, float("inf"))
        board.set_placement_knobs(float("nan"), 2.0, 2.0)
        reg = session.registry
        assert reg.value("actuations_rejected_total", kind="frequency") == 1
        assert reg.value("actuations_nonfinite_total", kind="frequency") == 1
        assert reg.value("actuations_rejected_total", kind="placement") == 1
        session.close()

    def test_nan_command_leaves_setting_untouched(self):
        board = Board(make_application("gamess"), spec=default_xu3_spec(),
                      record=False)
        before = board.clusters[BIG].frequency
        board.set_cluster_frequency(BIG, float("nan"))
        assert board.clusters[BIG].frequency == before


# ----------------------------------------------------------------------
# Supervisor + fault injection -> flight dumps
# ----------------------------------------------------------------------
class TestSupervisedTelemetry:
    def test_trip_dumps_flight_and_counts(self, context, tmp_path):
        from repro.experiments.resilience import supervised_run

        out = tmp_path / "tel"
        session = TelemetrySession(out)
        campaign = FaultCampaign(
            [FaultEvent("temp-dropout", start=5.0, duration=10.0)])
        supervised_run(context, "coordinated-heuristic", campaign=campaign,
                       max_time=30.0, telemetry=session)
        reg = session.registry
        assert reg.value("supervisor_trips_total", cause="sensor-dropout") >= 1
        assert reg.value("fault_events_total", kind="temp-dropout",
                         phase="applied") == 1
        assert reg.value("fault_events_total", kind="temp-dropout",
                         phase="reverted") == 1
        assert reg.value(
            "flight_dumps_total", reason="fault-applied-temp-dropout") == 1
        session.close()
        dumps = sorted(out.glob("flight-*.json"))
        assert dumps, "supervisor trip must dump the flight recorder"
        trip = [p for p in dumps if "NOMINAL-DEGRADED" in p.name]
        assert trip, [p.name for p in dumps]
        payload = json.loads(trip[0].read_text())
        assert payload["reason"].startswith("NOMINAL->DEGRADED")
        assert payload["snapshots"], "dump must preserve the lead-up periods"
        assert payload["snapshots"][-1]["supervisor_state"] == "NOMINAL"
        # spans were persisted at the dump even though the run kept going
        prom = (out / "metrics.prom").read_text()
        assert "supervisor_state" in prom
        assert reg.value("control_periods_total") > 0

    def test_supervised_run_without_telemetry_unchanged(self, context):
        from repro.experiments.resilience import supervised_run

        result = supervised_run(context, "coordinated-heuristic",
                                max_time=10.0)
        assert result.exd > 0
        assert result.supervisor._primary.telemetry is None


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCLI:
    def test_trace_subcommand(self, context, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "tel"
        session = TelemetrySession(out)
        run_workload("coordinated-heuristic", "gamess", context,
                     max_time=5.0, record=False, telemetry=session)
        session.dump_flight("unit-test")
        session.close()
        assert main(["trace", str(out)]) == 0
        text = capsys.readouterr().out
        assert "periods" in text
        assert "sample" in text  # the span table
        assert "unit-test" in text  # the flight-dump listing

    def test_run_parser_accepts_telemetry_flag(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["run", "--help"])
        assert exc.value.code == 0
        assert "--telemetry" in capsys.readouterr().out

    @pytest.mark.slow
    def test_cli_run_with_telemetry(self, design_context, tmp_path, capsys,
                                    monkeypatch):
        """End to end: run --telemetry DIR, then read it back with trace."""
        import repro.__main__ as cli

        monkeypatch.setattr(cli, "_make_context", lambda args: design_context)
        out = tmp_path / "tel"
        code = cli.main(["run", "coordinated-heuristic", "h264ref",
                         "--telemetry", str(out)])
        assert code == 0
        assert "ExD" in capsys.readouterr().out
        for name in ("metrics.prom", "metrics.json", "spans.jsonl",
                     "trace.json"):
            assert (out / name).exists(), name
        assert "control_periods_total" in (out / "metrics.prom").read_text()
        json.loads((out / "trace.json").read_text())
        assert cli.main(["trace", str(out)]) == 0
        assert "perfetto.dev" in capsys.readouterr().out
