"""Tests for the system-identification substrate."""

import numpy as np
import pytest

from repro.lti import StateSpace
from repro.sysid import (
    ExperimentData,
    center_per_run,
    fit_arx,
    fit_box_jenkins,
    fit_graybox,
    fit_percent,
    fit_subspace,
    final_prediction_error,
    merge_experiments,
    multilevel_random,
    prbs,
    staircase,
    validate_model,
)


@pytest.fixture
def toy_system():
    return StateSpace([[0.8, 0.1], [0.0, 0.6]], [[1.0, 0.0], [0.5, 1.0]],
                      [[1.0, 0.0], [0.2, 1.0]], None, dt=0.5)


@pytest.fixture
def toy_data(toy_system, rng):
    u = np.column_stack([
        prbs(900, -1, 1, seed=2, dwell=3),
        multilevel_random(900, [-1, -0.5, 0, 0.5, 1], 4, seed=3),
    ])
    _, y = toy_system.simulate(u)
    y += 0.01 * rng.normal(size=y.shape)
    return ExperimentData(u, y, dt=0.5, label="toy")


class TestExcitation:
    def test_prbs_levels_and_length(self):
        sig = prbs(100, -1.0, 2.0, seed=1, dwell=4)
        assert sig.shape == (100,)
        assert set(np.unique(sig)) <= {-1.0, 2.0}

    def test_prbs_dwell(self):
        sig = prbs(100, 0, 1, seed=1, dwell=5)
        changes = np.nonzero(np.diff(sig))[0] + 1
        assert all(c % 5 == 0 for c in changes)

    def test_staircase_cycles(self):
        sig = staircase(10, [1, 2, 3], dwell=2)
        assert list(sig[:6]) == [1, 1, 2, 2, 3, 3]
        assert list(sig[6:8]) == [1, 1]

    def test_multilevel_values(self):
        sig = multilevel_random(60, [1.0, 2.0, 4.0], 3, seed=0)
        assert set(np.unique(sig)) <= {1.0, 2.0, 4.0}

    def test_bad_dwell_rejected(self):
        with pytest.raises(ValueError):
            prbs(10, 0, 1, dwell=0)
        with pytest.raises(ValueError):
            staircase(10, [1], dwell=0)


class TestExperimentData:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ExperimentData(np.zeros((5, 1)), np.zeros((4, 1)), dt=1.0)

    def test_normalized_stats(self, toy_data):
        norm, u_scale, y_scale, u_off, y_off = toy_data.normalized()
        assert np.allclose(norm.inputs.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(norm.outputs.std(axis=0), 1.0, atol=1e-6)

    def test_split_chronological(self, toy_data):
        train, valid = toy_data.split(0.8)
        assert train.n_samples == int(0.8 * toy_data.n_samples)
        assert train.n_samples + valid.n_samples == toy_data.n_samples

    def test_merge_tracks_boundaries(self, toy_data):
        merged, boundaries = merge_experiments([toy_data, toy_data])
        assert merged.n_samples == 2 * toy_data.n_samples
        assert boundaries == [0, toy_data.n_samples]

    def test_merge_rejects_mixed_dt(self, toy_data):
        other = ExperimentData(toy_data.inputs, toy_data.outputs, dt=1.0)
        with pytest.raises(ValueError, match="dt"):
            merge_experiments([toy_data, other])

    def test_center_per_run(self, toy_data):
        merged, bounds = merge_experiments([toy_data, toy_data])
        centered = center_per_run(merged, bounds)
        first = centered.outputs[: toy_data.n_samples]
        assert np.allclose(first.mean(axis=0), 0.0, atol=1e-9)


class TestARX:
    def test_one_step_fit_good(self, toy_data):
        model = fit_arx(toy_data, na=3, nb=3, delay=1)
        report = validate_model(model, toy_data)
        assert report.mean_fit > 90.0

    def test_statespace_realization_matches_freerun(self, toy_data):
        model = fit_arx(toy_data, na=3, nb=3, delay=1)
        sys_ = model.to_statespace()
        _, y_ss = sys_.simulate(toy_data.inputs)
        fits = fit_percent(toy_data.outputs, y_ss)
        assert np.mean(fits) > 80.0

    def test_boundaries_respected(self, toy_data):
        merged, bounds = merge_experiments([toy_data, toy_data])
        model = fit_arx(merged, na=2, nb=2, delay=1, boundaries=bounds)
        assert model.n_outputs == 2

    def test_insufficient_data_raises(self):
        tiny = ExperimentData(np.zeros((3, 1)), np.zeros((3, 1)), dt=1.0)
        with pytest.raises(ValueError):
            fit_arx(tiny, na=4, nb=4, delay=1)


class TestBoxJenkins:
    def test_refinement_not_worse_than_arx(self, toy_data):
        bj = fit_box_jenkins(toy_data, na=3, nb=3, nc=2, delay=1)
        arx = fit_arx(toy_data, na=3, nb=3, delay=1)
        bj_report = validate_model(bj, toy_data)
        arx_report = validate_model(arx, toy_data)
        assert bj_report.mean_fit >= arx_report.mean_fit - 2.0

    def test_exposes_deterministic_statespace(self, toy_data):
        bj = fit_box_jenkins(toy_data, na=2, nb=2, nc=1, delay=1)
        assert bj.to_statespace().is_discrete


class TestSubspace:
    def test_recovers_low_order_model(self, toy_data):
        model, svals = fit_subspace(toy_data, order=2)
        assert model.n_states == 2
        _, y_hat = model.simulate(toy_data.inputs)
        assert np.mean(fit_percent(toy_data.outputs, y_hat)) > 85.0

    def test_singular_values_reveal_order(self, toy_data):
        _, svals = fit_subspace(toy_data, order=4)
        assert svals[1] / max(svals[2], 1e-12) > 10.0

    def test_stability_clamped(self, toy_data):
        model, _ = fit_subspace(toy_data, order=3)
        assert model.spectral_radius() < 1.0


class TestGraybox:
    def test_recovers_static_gain(self, rng):
        # y = G0 u through known lag 0.5.
        G0 = np.array([[1.0, -0.5], [0.3, 2.0]])
        pole = 0.5
        u = rng.normal(size=(1200, 2))
        y = np.zeros((1200, 2))
        state = np.zeros(2)
        for t in range(1200):
            y[t] = state
            state = pole * state + (1 - pole) * (G0 @ u[t])
        data = ExperimentData(u, y, dt=0.5)
        model = fit_graybox(data, center=False)
        assert model.gain == pytest.approx(G0, abs=0.05)
        assert model.poles == pytest.approx([pole, pole], abs=0.08)

    def test_statespace_is_diagonal_lag(self, toy_data):
        model = fit_graybox(toy_data)
        sys_ = model.to_statespace()
        assert sys_.n_states == toy_data.n_outputs
        assert np.allclose(sys_.A, np.diag(np.diag(sys_.A)))


class TestValidation:
    def test_fit_percent_perfect(self):
        y = np.random.default_rng(0).normal(size=(50, 2))
        assert fit_percent(y, y) == pytest.approx([100.0, 100.0])

    def test_fit_percent_mean_model_is_zero(self):
        y = np.random.default_rng(0).normal(size=(200, 1))
        y_hat = np.full_like(y, y.mean())
        assert fit_percent(y, y_hat)[0] == pytest.approx(0.0, abs=1e-6)

    def test_fpe_penalizes_parameters(self):
        assert final_prediction_error(1.0, 100, 10) > 1.0
        assert final_prediction_error(1.0, 100, 200) == np.inf

    def test_validation_report_summary(self, toy_data):
        model = fit_arx(toy_data, na=2, nb=2, delay=1)
        report = validate_model(model, toy_data)
        assert "fit per output" in report.summary()
