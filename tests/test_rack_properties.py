"""Property-based tests (hypothesis) on the rack layer's invariants.

Two tiers:

* cheap pure-function properties (cap projection, demand weighting, the
  budget governor's actuation grid) at full hypothesis example counts;
* randomized :class:`RackSpec` campaigns — N in [1, 8] boards with mixed
  specs, random tiny job streams, optional mid-run faults — run under an
  active :class:`InvariantMonitor`, asserting the rack-level conservation
  invariants hold on every period of every drawn rack.
"""

import dataclasses
import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.board.specs import default_xu3_spec
from repro.rack import (
    BoardReading,
    BudgetGovernor,
    HeuristicRackController,
    JobSpec,
    Rack,
    RackBoardFault,
    RackSpec,
    SSVRackController,
    select_integral_gain,
)
from repro.rack.controllers import _project_to_cap
from repro.verify.invariants import (
    InvariantMonitor,
    activate_monitor,
    deactivate_monitor,
)

TINY_WORKLOADS = ("mcf@0.02", "blackscholes@0.02", "gamess@0.02",
                  "streamcluster@0.02")


# ----------------------------------------------------------------------
# Pure-function properties: cheap, run at full example counts
# ----------------------------------------------------------------------
@st.composite
def budget_partitions(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    floors = [draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
              for _ in range(n)]
    budgets = [f + draw(st.floats(min_value=0.0, max_value=5.0,
                                  allow_nan=False))
               for f in floors]
    cap = draw(st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
    return budgets, floors, max(cap, sum(floors))


class TestCapProjectionProperties:
    @given(parts=budget_partitions())
    @settings(max_examples=200, deadline=None)
    def test_projection_fits_cap_and_preserves_floors(self, parts):
        budgets, floors, cap = parts
        out = _project_to_cap(list(budgets), list(floors), cap)
        assert sum(out) <= cap + 1e-9
        for b_out, floor in zip(out, floors):
            assert b_out >= floor - 1e-9

    @given(parts=budget_partitions())
    @settings(max_examples=200, deadline=None)
    def test_projection_is_identity_when_feasible(self, parts):
        budgets, floors, cap = parts
        if sum(budgets) <= cap:
            assert _project_to_cap(list(budgets), list(floors), cap) == budgets

    @given(parts=budget_partitions())
    @settings(max_examples=200, deadline=None)
    def test_projection_preserves_ordering(self, parts):
        """Scaling excess by a common factor never reorders demands."""
        budgets, floors, cap = parts
        out = _project_to_cap(list(budgets), list(floors), cap)
        for i in range(len(out)):
            for j in range(len(out)):
                if floors[i] == floors[j] and budgets[i] <= budgets[j]:
                    assert out[i] <= out[j] + 1e-9


class TestDemandWeightProperties:
    @given(
        powers=st.lists(
            st.one_of(
                st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
                st.just(float("nan")),
            ),
            min_size=1, max_size=8,
        ),
        depths=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=150, deadline=None)
    def test_weights_are_a_distribution_over_trusted_boards(self, powers,
                                                            depths):
        spec = RackSpec(
            boards=tuple(default_xu3_spec() for _ in powers),
            power_cap=6.0 * len(powers),
        )
        ctl = HeuristicRackController(spec, mode="greedy")
        readings = [BoardReading(power=p, headroom=0.0, queue_depth=depths,
                                 busy=True)
                    for p in powers]
        weights = ctl._demand_weights(readings)
        assert len(weights) == len(powers)
        assert all(w >= 0.0 for w in weights)
        for w, r in zip(weights, readings):
            if not r.trusted:
                assert w == 0.0
        if any(r.trusted for r in readings):
            assert sum(weights) == pytest.approx(1.0)
        else:
            assert sum(weights) == 0.0

    @given(
        powers=st.lists(st.floats(min_value=0.0, max_value=6.0,
                                  allow_nan=False),
                        min_size=2, max_size=8),
        cap=st.floats(min_value=2.0, max_value=30.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_controller_budgets_respect_cap_floors_ceilings(self, powers,
                                                            cap):
        n = len(powers)
        floor = 0.3
        spec = RackSpec(boards=tuple(default_xu3_spec() for _ in powers),
                        power_cap=max(cap, n * floor), budget_floor=floor)
        for ctl in (HeuristicRackController(spec, mode="greedy"),
                    HeuristicRackController(spec, mode="uniform")):
            readings = [BoardReading(power=p, headroom=0.0, queue_depth=1,
                                     busy=True)
                        for p in powers]
            budgets = ctl.step(readings, spec.power_cap)
            assert sum(budgets) <= spec.power_cap + 1e-9
            for b, ceil in zip(budgets, ctl.ceilings):
                assert floor - 1e-9 <= b <= ceil + 1e-9


class TestGovernorProperties:
    @given(
        budget=st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
        power=st.one_of(
            st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
            st.just(float("nan")),
        ),
        steps=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=150, deadline=None)
    def test_commands_stay_on_the_dvfs_grids(self, budget, power, steps):
        spec = default_xu3_spec()
        governor = BudgetGovernor(spec)
        for _ in range(steps):
            fb, fl = governor.command(budget, power)
            assert spec.big.freq_range.contains(fb)
            assert spec.little.freq_range.contains(fl)
            assert 0.0 <= governor.level <= 1.0


class TestGainSelectionProperties:
    @given(n_boards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_selected_gain_is_mu_certified(self, n_boards):
        gain, history = select_integral_gain(n_boards)
        assert 0.0 < gain <= 1.0
        certified = dict(history)
        assert certified[gain] <= 1.0 + 1e-9
        # Every larger grid gain examined before the pick failed its
        # certificate — the selection is maximal, not arbitrary.
        for g, peak in history:
            if g > gain:
                assert peak > 1.0


# ----------------------------------------------------------------------
# Randomized rack campaigns driven through the invariant monitor
# ----------------------------------------------------------------------
@st.composite
def rack_specs(draw):
    """Randomized (but valid) racks: N in [1, 8], mixed board variants."""
    sim_dt = 0.05
    n = draw(st.integers(min_value=1, max_value=8))
    boards = []
    for _ in range(n):
        boards.append(dataclasses.replace(
            default_xu3_spec(sim_dt=sim_dt),
            control_period=draw(st.sampled_from([0.5, 1.0, 2.0])),
            ambient_temp=draw(st.sampled_from([35.0, 38.0])),
        ))
    floor = 0.6
    envelope = (boards[0].power_limit_big + boards[0].power_limit_little
                + boards[0].board_static_power)
    cap = draw(st.floats(min_value=n * floor + 0.5,
                         max_value=0.8 * envelope * n,
                         allow_nan=False))
    n_jobs = draw(st.integers(min_value=1, max_value=4))
    jobs = tuple(
        JobSpec(
            name=f"j{i}",
            workload=draw(st.sampled_from(TINY_WORKLOADS)),
            arrival=draw(st.floats(min_value=0.0, max_value=8.0,
                                   allow_nan=False)),
            sla=draw(st.floats(min_value=20.0, max_value=60.0,
                               allow_nan=False)),
        )
        for i in range(n_jobs)
    )
    faults = ()
    if n > 1 and draw(st.booleans()):
        faults = (RackBoardFault(
            board=draw(st.integers(min_value=0, max_value=n - 1)),
            start=draw(st.sampled_from([4.0, 8.0])),
            duration=draw(st.sampled_from([6.0, 10.0])),
            kind=draw(st.sampled_from(RackBoardFault.KINDS)),
        ),)
    return RackSpec(boards=tuple(boards), power_cap=cap, rack_period=2.0,
                    budget_floor=floor, jobs=jobs, faults=faults)


class TestRackCampaignProperties:
    @given(spec=rack_specs(), controller=st.sampled_from(["ssv", "greedy"]),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_conservation_invariants_hold_on_random_racks(self, spec,
                                                          controller, seed):
        if controller == "ssv":
            ctl = SSVRackController(spec)
        else:
            ctl = HeuristicRackController(spec, mode="greedy")
        monitor = InvariantMonitor(telemetry=None)
        rack = Rack(spec, controller=ctl, record=True, seed=seed)
        activate_monitor(monitor)
        try:
            result = rack.run(max_time=24.0)
        finally:
            deactivate_monitor()
        assert monitor.ok, monitor.summary()
        assert monitor.periods_checked > 0

        # Cap conservation: budgets held by online boards never exceed the
        # effective cap, on any recorded period.
        trace = result.trace
        for k, total in enumerate(trace.budget_total):
            assert total <= trace.cap_eff[k] + 1e-6
            assert all(b >= -1e-9 for b in trace.budgets[k])

        # Job accounting: every admitted job is in exactly one state and
        # the result counters tile the admitted set.
        states = [job.state for job in result.jobs]
        assert all(s in ("queued", "running", "completed") for s in states)
        assert (result.jobs_completed + result.jobs_unfinished
                == result.jobs_admitted)
        assert result.jobs_admitted <= len(spec.jobs)

        # Energy conservation: rack energy is the sum of board energies.
        assert result.energy == pytest.approx(sum(result.board_energy))
        assert result.energy >= 0.0

    @given(spec=rack_specs(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_bank_and_scalar_paths_agree_on_random_racks(self, spec, seed):
        """use_bank is an implementation detail on any drawn rack."""
        banked = Rack(spec, use_bank=True, record=True, seed=seed)
        rb = banked.run(max_time=16.0)
        scalar = Rack(spec, use_bank=False, record=True, seed=seed)
        rs = scalar.run(max_time=16.0)
        assert rb.energy == rs.energy
        assert rb.jobs_completed == rs.jobs_completed
        assert rb.trace.budget_total == rs.trace.budget_total
        assert rb.trace.power_true == rs.trace.power_true

    def test_monitor_flags_budget_over_cap(self):
        """Non-vacuity: the rack checks really do fire on bad budgets."""
        monitor = InvariantMonitor(telemetry=None)
        violations = monitor.check_rack(
            time=4.0, budgets=(3.0, 3.0), floors=(0.6, 0.6), cap=5.0,
            online=(True, True), admitted=2, queued=0, running=2,
            completed=0)
        assert any(v.check == "rack.cap" for v in violations)
        assert not monitor.ok

    def test_monitor_flags_lost_job(self):
        monitor = InvariantMonitor(telemetry=None)
        violations = monitor.check_rack(
            time=4.0, budgets=(1.0,), floors=(0.6,), cap=5.0,
            online=(True,), admitted=3, queued=1, running=1, completed=0)
        assert any(v.check == "rack.job-accounting" for v in violations)

    def test_monitor_flags_offline_board_holding_budget(self):
        monitor = InvariantMonitor(telemetry=None)
        violations = monitor.check_rack(
            time=4.0, budgets=(1.0, 1.0), floors=(0.6, 0.6), cap=5.0,
            online=(True, False), admitted=1, queued=0, running=1,
            completed=0)
        assert any(v.check == "rack.offline-budget" for v in violations)
