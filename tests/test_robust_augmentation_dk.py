"""Tests for generalized-plant construction and the D-K iteration."""

import numpy as np
import pytest

from repro.lti import StateSpace
from repro.robust import build_generalized_plant, dk_synthesize
from repro.sysid import ExperimentData, fit_arx, multilevel_random, prbs


@pytest.fixture(scope="module")
def identified_model():
    """A small identified model with one external signal."""
    rng = np.random.default_rng(7)
    true = StateSpace(
        [[0.7, 0.1, 0.0], [0.0, 0.5, 0.2], [0.0, 0.0, 0.9]],
        [[0.5, 0.1, 0.05], [0.2, 0.6, 0.1], [0.0, 0.1, 0.3]],
        [[1.0, 0.2, 0.1], [0.1, 1.0, 0.5]],
        None,
        dt=0.5,
    )
    u = np.column_stack([
        prbs(1000, -1, 1, seed=1, dwell=4),
        multilevel_random(1000, [-1, -0.5, 0, 0.5, 1], 5, seed=2),
        multilevel_random(1000, [-1, 0, 1], 8, seed=3),
    ])
    _, y = true.simulate(u)
    y += 0.02 * rng.normal(size=y.shape)
    arx = fit_arx(ExperimentData(u, y, dt=0.5), na=2, nb=2, delay=1)
    return arx.to_statespace()


@pytest.fixture(scope="module")
def augmented(identified_model):
    return build_generalized_plant(
        identified_model,
        n_u=2,
        input_spans=[1.0, 1.0],
        input_mids=[0.0, 0.0],
        output_ranges=[4.0, 4.0],
        output_mids=[0.0, 0.0],
        bound_fractions=[0.2, 0.1],
        input_weights=[1.0, 1.0],
        guardband=0.4,
        external_scales=[1.0],
        external_mids=[0.0],
    )


class TestAugmentation:
    def test_channel_bookkeeping(self, augmented):
        ch = augmented.channels
        assert ch.n_u == 2
        assert ch.n_y == 2
        assert ch.n_e == 1
        assert ch.n_w == 2 + 2 + 1 + 3  # d + r + e + noise
        assert ch.n_z == 2 + 2 + 2  # f + err + effort

    def test_plant_is_continuous(self, augmented):
        assert not augmented.plant.system.is_discrete

    def test_synthesis_assumptions_hold(self, augmented):
        _, B1, _, C1, _, D11, D12, D21, D22 = augmented.plant.blocks()
        assert np.abs(D11).max() == pytest.approx(0.0)
        assert np.abs(D22).max() == pytest.approx(0.0)
        assert np.linalg.matrix_rank(D12) == D12.shape[1]
        assert np.linalg.matrix_rank(D21) == D21.shape[0]
        assert np.abs(D12.T @ C1).max() < 1e-10
        assert np.abs(B1 @ D21.T).max() < 1e-10

    def test_uncertainty_radius_includes_quantization(self, identified_model):
        plain = build_generalized_plant(
            identified_model, n_u=2,
            input_spans=[1.0, 1.0], input_mids=[0, 0],
            output_ranges=[4.0, 4.0], output_mids=[0, 0],
            bound_fractions=[0.2, 0.1], input_weights=[1.0, 1.0],
            guardband=0.4, external_scales=[1.0],
        )
        quantized = build_generalized_plant(
            identified_model, n_u=2,
            input_spans=[1.0, 1.0], input_mids=[0, 0],
            output_ranges=[4.0, 4.0], output_mids=[0, 0],
            bound_fractions=[0.2, 0.1], input_weights=[1.0, 1.0],
            guardband=0.4, external_scales=[1.0],
            quantization_radii=[0.1, 0.05],
        )
        assert quantized.uncertainty_radius == pytest.approx(
            plain.uncertainty_radius + 0.1
        )

    def test_rejects_bad_metadata(self, identified_model):
        with pytest.raises(ValueError):
            build_generalized_plant(
                identified_model, n_u=2,
                input_spans=[1.0],  # wrong length
                input_mids=[0, 0],
                output_ranges=[4.0, 4.0], output_mids=[0, 0],
                bound_fractions=[0.2, 0.1], input_weights=[1.0, 1.0],
                guardband=0.4, external_scales=[1.0],
            )

    def test_structure_matches_closed_loop_dims(self, augmented):
        rows = augmented.structure.total_rows
        cols = augmented.structure.total_cols
        assert rows == augmented.channels.n_z
        assert cols == augmented.channels.n_w


class TestDKIteration:
    def test_produces_verified_controller(self, augmented):
        result = dk_synthesize(augmented, max_iterations=2, mu_points=15)
        assert result.controller.n_states > 0
        assert result.hinf.closed_loop.is_stable()
        assert result.mu.peak_upper > 0
        assert 0 < result.min_s <= 1e6

    def test_mu_history_monotone_ish(self, augmented):
        result = dk_synthesize(augmented, max_iterations=3, mu_points=15)
        # The kept result must be the best seen.
        assert result.mu.peak_upper == pytest.approx(
            min(result.peak_mu_history), rel=1e-9
        )

    def test_summary_mentions_robustness(self, augmented):
        result = dk_synthesize(augmented, max_iterations=1, mu_points=10)
        assert "mu" in result.summary()
