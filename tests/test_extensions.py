"""Tests for the three-layer (application/QoS) extension."""

import numpy as np
import pytest

from repro.extensions import QosApplication, app_layer_spec
from repro.extensions.app_layer import make_qos_application


class TestQosApplication:
    def test_quality_scales_item_cost(self):
        app = QosApplication("q", total_items=100, base_giga_per_item=1.0)
        full = app.giga_per_item()
        app.set_quality(0.5)
        half = app.giga_per_item()
        assert half < full
        assert half == pytest.approx(1.0 * (0.35 + 0.65 * 0.5))

    def test_quality_clamped(self):
        app = QosApplication("q", total_items=10, base_giga_per_item=1.0)
        app.set_quality(2.0)
        assert app.quality == 1.0
        app.set_quality(0.1)
        assert app.quality == 0.5

    def test_heartbeats_accumulate(self):
        app = QosApplication("q", total_items=100, base_giga_per_item=1.0)
        thread = app.runnable_threads()[0]
        app.execute(thread, 5.0, now=1.0)
        assert app.read_heartbeats() == pytest.approx(5.0)
        assert app.read_heartbeats() == 0.0  # delta semantics

    def test_requality_preserves_item_count(self):
        app = QosApplication("q", total_items=100, base_giga_per_item=1.0)
        thread = app.runnable_threads()[0]
        app.execute(thread, 10.0, now=1.0)
        before = app.items_completed
        app.set_quality(0.5)
        # Completed items are untouched; remaining pool is re-priced.
        assert app.items_completed == before
        remaining_items = app.pool_remaining / app.giga_per_item()
        assert remaining_items == pytest.approx(100 - before)

    def test_completes_at_total_items(self):
        app = QosApplication("q", total_items=10, base_giga_per_item=1.0)
        thread = app.runnable_threads()[0]
        app.execute(thread, 100.0, now=2.0)
        assert app.done
        assert app.items_completed == 10

    def test_max_threads_limits_runnable(self):
        app = QosApplication("q", total_items=100, base_giga_per_item=1.0,
                             max_threads=8)
        app.set_max_threads(3)
        assert len(app.runnable_threads()) == 3

    def test_lower_quality_finishes_faster_on_board(self):
        from repro.board import Board

        def run(quality):
            app = make_qos_application(total_items=150)
            app.set_quality(quality)
            board = Board(app, seed=2, record=False)
            board.run(max_time=400.0)
            return board.time

        assert run(0.5) < run(1.0)


class TestAppLayerSpec:
    def test_spec_structure(self):
        spec = app_layer_spec()
        assert spec.name == "application"
        assert spec.input_names() == ["quality", "requested_threads"]
        assert spec.output_names() == ["heartbeat_rate", "delivered_quality"]
        # Neighbour-only communication: externals come from the software
        # layer, never the hardware layer.
        assert all(s.source_layer == "software" for s in spec.externals)

    def test_qos_is_the_critical_output(self):
        spec = app_layer_spec()
        by_name = {s.name: s for s in spec.outputs}
        assert by_name["heartbeat_rate"].bound_fraction < \
            by_name["delivered_quality"].bound_fraction

    def test_quality_knob_quantized(self):
        spec = app_layer_spec()
        quality = spec.inputs[0].allowed
        assert quality.low == 0.5
        assert quality.high == 1.0
        assert quality.snap(0.83) == pytest.approx(0.85)


@pytest.mark.slow
class TestThreeLayerIntegration:
    def test_design_and_feasible_tracking(self, design_context):
        from repro.experiments import three_layer

        result = three_layer.run(design_context, targets=(3.5,),
                                 app_samples=120)
        row = result.by_label("three-layer @ 3.5")
        assert abs(row[2] - 3.5) < 0.9  # heartbeat near target
        assert 0.5 <= row[3] <= 1.0  # quality inside the knob range
        assert "three layers" in result.render()
