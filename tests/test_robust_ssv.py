"""Tests for structured-singular-value bounds and uncertainty structures."""

import numpy as np
import pytest

from repro.lti import StateSpace
from repro.robust import (
    BlockStructure,
    UncertaintyBlock,
    guardband_weight,
    mu_bounds_over_frequency,
    mu_lower_bound,
    mu_upper_bound,
    quantization_uncertainty,
)
from repro.signals import QuantizedRange


class TestUncertaintyBlocks:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            UncertaintyBlock("weird", 1, 1)

    def test_repeated_must_be_square(self):
        with pytest.raises(ValueError):
            UncertaintyBlock("repeated", 2, 3)

    def test_structure_dimensions(self):
        structure = BlockStructure([
            UncertaintyBlock("full", 2, 3),
            UncertaintyBlock("repeated", 2, 2),
        ])
        assert structure.total_rows == 4
        assert structure.total_cols == 5

    def test_random_sample_norm_bounded(self, rng):
        structure = BlockStructure([
            UncertaintyBlock("full", 2, 2),
            UncertaintyBlock("repeated", 3, 3),
        ])
        for _ in range(10):
            delta = structure.random_sample(rng, radius=0.7)
            assert np.linalg.svd(delta, compute_uv=False)[0] <= 0.7 + 1e-9

    def test_guardband_weight(self):
        assert guardband_weight(0.4) == pytest.approx(0.4)
        with pytest.raises(ValueError):
            guardband_weight(-1.0)

    def test_quantization_uncertainty(self):
        radii = quantization_uncertainty([
            QuantizedRange(0.2, 2.0, step=0.1),  # half-gap 0.05, half-span 0.9
            QuantizedRange(1, 4, step=1),  # half-gap 0.5, half-span 1.5
        ])
        assert radii[0] == pytest.approx(0.05 / 0.9)
        assert radii[1] == pytest.approx(0.5 / 1.5)


class TestMuBounds:
    def test_single_full_block_equals_sigma_max(self, rng):
        M = rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3))
        structure = BlockStructure([UncertaintyBlock("full", 3, 3)])
        upper, _ = mu_upper_bound(M, structure)
        assert upper == pytest.approx(np.linalg.svd(M, compute_uv=False)[0])

    def test_upper_at_least_lower(self, rng):
        structure = BlockStructure([
            UncertaintyBlock("full", 2, 2),
            UncertaintyBlock("full", 2, 2),
        ])
        for seed in range(5):
            gen = np.random.default_rng(seed)
            M = gen.normal(size=(4, 4)) + 1j * gen.normal(size=(4, 4))
            upper, _ = mu_upper_bound(M, structure)
            lower = mu_lower_bound(M, structure, samples=40, seed=seed)
            assert upper >= lower - 1e-9

    def test_upper_not_above_sigma_max(self, rng):
        """D-scaling can only tighten below the unstructured bound."""
        structure = BlockStructure([
            UncertaintyBlock("full", 2, 2),
            UncertaintyBlock("full", 2, 2),
        ])
        M = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        upper, _ = mu_upper_bound(M, structure)
        assert upper <= np.linalg.svd(M, compute_uv=False)[0] + 1e-9

    def test_block_diagonal_matrix_mu(self):
        """For M block diagonal w.r.t. the structure, mu = max block norm."""
        M = np.zeros((4, 4), dtype=complex)
        M[:2, :2] = np.diag([2.0, 1.0])
        M[2:, 2:] = np.diag([0.5, 0.1])
        structure = BlockStructure([
            UncertaintyBlock("full", 2, 2),
            UncertaintyBlock("full", 2, 2),
        ])
        upper, _ = mu_upper_bound(M, structure)
        lower = mu_lower_bound(M, structure, samples=80)
        assert upper == pytest.approx(2.0, rel=1e-3)
        assert lower == pytest.approx(2.0, rel=0.05)

    def test_shape_mismatch_rejected(self, rng):
        structure = BlockStructure([UncertaintyBlock("full", 2, 2)])
        with pytest.raises(ValueError):
            mu_upper_bound(rng.normal(size=(3, 3)), structure)

    def test_scaling_matrices(self):
        structure = BlockStructure([
            UncertaintyBlock("full", 1, 1),
            UncertaintyBlock("full", 2, 2),
        ])
        d_left, d_right_inv = structure.scaling_matrices([np.log(2.0), 0.0])
        assert d_left[0, 0] == pytest.approx(2.0)
        assert d_right_inv[0, 0] == pytest.approx(0.5)
        assert d_left[1, 1] == pytest.approx(1.0)


class TestMuOverFrequency:
    def test_detects_small_gain_robustness(self):
        # A tiny stable system: loop gain << 1 everywhere -> robust.
        channel = StateSpace([[0.5]], [[0.1]], [[0.1]], [[0.0]], dt=1.0)
        structure = BlockStructure([UncertaintyBlock("full", 1, 1)])
        analysis = mu_bounds_over_frequency(channel, structure, points=15)
        assert analysis.robust
        assert analysis.tolerated_fraction() > 1.0

    def test_flags_large_gain(self):
        channel = StateSpace([[0.5]], [[1.0]], [[5.0]], [[0.0]], dt=1.0)
        structure = BlockStructure([UncertaintyBlock("full", 1, 1)])
        analysis = mu_bounds_over_frequency(channel, structure, points=15)
        assert not analysis.robust
        # Peak of |5/(z-0.5)| is 10 at DC.
        assert analysis.peak_upper == pytest.approx(10.0, rel=0.05)
