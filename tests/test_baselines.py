"""Tests for the baseline controllers (heuristics and LQG variants)."""

import numpy as np
import pytest

from repro.baselines import (
    CoordinatedHeuristicHW,
    CoordinatedHeuristicOS,
    DecoupledHeuristicHW,
    DecoupledHeuristicOS,
)
from repro.board import default_xu3_spec


@pytest.fixture
def spec():
    return default_xu3_spec()


class TestCoordinatedHW:
    def test_ramps_up_when_safe(self, spec):
        ctrl = CoordinatedHeuristicHW(spec)
        f_start = ctrl.f_big
        for _ in range(4 * ctrl.SAFE_PERIODS):
            u = ctrl.step([3.0, 1.0, 0.1, 60.0], [8, 2, 1])
        assert u[2] > f_start

    def test_backs_off_on_power_pressure(self, spec):
        ctrl = CoordinatedHeuristicHW(spec)
        f_start = ctrl.f_big
        u = ctrl.step([3.0, spec.power_limit_big * 1.1, 0.1, 60.0], [8, 2, 1])
        assert u[2] < f_start

    def test_sheds_surplus_cores_first(self, spec):
        ctrl = CoordinatedHeuristicHW(spec)
        # Two threads on four cores: surplus cores are the cheap shed.
        u = ctrl.step([3.0, spec.power_limit_big * 1.0, 0.1, 60.0], [2, 1, 1])
        assert u[0] == 3  # one core shed, frequency untouched

    def test_thermal_cooling_clamp_with_hysteresis(self, spec):
        ctrl = CoordinatedHeuristicHW(spec)
        u = ctrl.step([3.0, 1.0, 0.1, spec.temp_limit + 0.5], [8, 2, 1])
        assert u[2] <= ctrl.COOLING_FREQ
        # Still clamped just below the limit (hysteresis).
        u = ctrl.step([3.0, 1.0, 0.1, spec.temp_limit - 2.0], [8, 2, 1])
        assert u[2] <= ctrl.COOLING_FREQ
        # Released after cooling past the band.
        u = ctrl.step(
            [3.0, 1.0, 0.1, spec.temp_limit - ctrl.COOLING_HYSTERESIS - 1],
            [8, 2, 1],
        )
        assert u[2] > ctrl.COOLING_FREQ or ctrl.f_big <= ctrl.COOLING_FREQ

    def test_reset_restores_midpoint(self, spec):
        ctrl = CoordinatedHeuristicHW(spec)
        for _ in range(30):
            ctrl.step([3.0, 1.0, 0.1, 60.0], [8, 2, 1])
        ctrl.reset()
        assert ctrl.f_big == spec.big.freq_range.snap(spec.big.freq_range.midpoint)


class TestCoordinatedOS:
    def test_big_first_packing(self, spec):
        ctrl = CoordinatedHeuristicOS(spec, total_threads=8)
        n_big, tpc_big, tpc_little = ctrl.step([], [4, 4, 2.0, 1.0])
        assert n_big == 8  # all heavy threads go big (2 per core)
        assert tpc_big == pytest.approx(2.0)

    def test_spills_over_when_big_throttled(self, spec):
        ctrl = CoordinatedHeuristicOS(spec, total_threads=8)
        n_big, *_ = ctrl.step([], [4, 4, 0.6, 1.0])  # big deeply throttled
        assert n_big < 8

    def test_observes_thread_count(self, spec):
        ctrl = CoordinatedHeuristicOS(spec)
        ctrl.observe_thread_count(3)
        n_big, *_ = ctrl.step([], [4, 4, 1.4, 1.0])
        assert n_big == 3


class TestDecoupled:
    def test_hw_races_to_maximum(self, spec):
        ctrl = DecoupledHeuristicHW(spec)
        u = ctrl.step([3.0, 1.0, 0.1, 60.0], [])
        assert u[2] == spec.big.freq_range.high
        assert u[0] == spec.big.n_cores

    def test_hw_threshold_backoff_then_re_max(self, spec):
        ctrl = DecoupledHeuristicHW(spec)
        u = ctrl.step([3.0, spec.power_limit_big * 1.5, 0.1, 60.0], [])
        assert u[2] < spec.big.freq_range.high
        u = ctrl.step([3.0, 1.0, 0.1, 60.0], [])
        assert u[2] == spec.big.freq_range.high  # instant re-max: the saw-tooth

    def test_os_round_robin_ignores_everything(self, spec):
        ctrl = DecoupledHeuristicOS(spec, total_threads=8)
        n_big, tpc_big, tpc_little = ctrl.step([], [])
        assert n_big == 4
        assert tpc_big == 1.0

    def test_targets_are_ignored(self, spec):
        ctrl = DecoupledHeuristicHW(spec)
        ctrl.set_targets([1, 2, 3, 4])  # accepted, ignored
        u = ctrl.step([3.0, 1.0, 0.1, 60.0], [])
        assert u[2] == spec.big.freq_range.high


@pytest.mark.slow
class TestLQGBaselines:
    def test_decoupled_lqg_builds(self, design_context):
        controller, result = design_context.get_lqg_hw()
        assert result.closed_loop_stable
        assert controller.state_machine.n_outputs == 4

    def test_monolithic_lqg_builds(self, design_context):
        controller, result = design_context.get_lqg_mono()
        assert controller.state_machine.n_outputs == 7

    def test_lqg_runtime_returns_unclamped(self, design_context):
        """LQG does not know about saturation: raw values come back."""
        import copy

        controller = copy.deepcopy(design_context.get_lqg_hw()[0])
        controller.reset()
        controller.set_targets([50.0, 50.0, 50.0, 500.0])  # absurd targets
        u = None
        for _ in range(60):
            u = controller.step([1.0, 0.5, 0.1, 50.0])
        assert any(abs(v) > 10.0 for v in u)  # way past physical limits
