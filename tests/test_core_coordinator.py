"""Tests for the multilayer runtime coordination."""

import numpy as np
import pytest

from repro.board import BIG, LITTLE, Board, default_xu3_spec
from repro.core import MultilayerCoordinator
from repro.workloads import Application, Phase


class _RecordingController:
    """Scripted controller stub that records what it was shown."""

    def __init__(self, actuation):
        self.actuation = list(actuation)
        self.seen_outputs = []
        self.seen_externals = []
        self.targets = np.zeros(4)

    def set_targets(self, targets):
        self.targets = np.asarray(targets, dtype=float)

    def reset(self):
        self.seen_outputs.clear()
        self.seen_externals.clear()

    def step(self, outputs, externals):
        self.seen_outputs.append(np.asarray(outputs, dtype=float))
        self.seen_externals.append(list(externals))
        return list(self.actuation)


@pytest.fixture
def board():
    app = Application("t", [Phase("p", 6, 30.0, mpki=0.8)])
    return Board(app, spec=default_xu3_spec(), seed=3)


def _advance(board, periods, coordinator):
    steps = int(round(board.spec.control_period / board.spec.sim_dt))
    for _ in range(periods):
        for _ in range(steps):
            board.step()
        coordinator.control_step(board, steps)


class TestCoordinator:
    def test_hw_actuation_applied_to_board(self, board):
        hw = _RecordingController([2, 3, 1.3, 0.9])
        coordinator = MultilayerCoordinator(hw)
        _advance(board, 1, coordinator)
        assert board.clusters[BIG].cores_on == 2
        assert board.clusters[LITTLE].cores_on == 3
        assert board.clusters[BIG].frequency == pytest.approx(1.3)

    def test_sw_actuation_moves_threads(self, board):
        hw = _RecordingController([4, 4, 1.5, 1.0])
        sw = _RecordingController([2, 1.0, 1.0])
        coordinator = MultilayerCoordinator(hw, sw)
        _advance(board, 1, coordinator)
        assert board.observe_placement()[BIG]["n_threads"] == 2

    def test_external_signals_cross_wired(self, board):
        """Each layer must see the other layer's previous actuation."""
        hw = _RecordingController([2, 3, 1.3, 0.9])
        sw = _RecordingController([5, 2.0, 1.0])
        coordinator = MultilayerCoordinator(hw, sw)
        _advance(board, 2, coordinator)
        # Second invocation: hw sees sw's first actuation and vice versa.
        assert hw.seen_externals[1] == [5, 2.0, 1.0]
        assert sw.seen_externals[1] == [2, 3, 1.3, 0.9]

    def test_records_accumulate(self, board):
        hw = _RecordingController([4, 4, 1.5, 1.0])
        coordinator = MultilayerCoordinator(hw)
        _advance(board, 3, coordinator)
        assert len(coordinator.records) == 3
        assert coordinator.records[0].exd_proxy > 0

    def test_outputs_have_hw_layout(self, board):
        hw = _RecordingController([4, 4, 1.5, 1.0])
        coordinator = MultilayerCoordinator(hw)
        _advance(board, 2, coordinator)
        outputs = hw.seen_outputs[-1]
        assert outputs.shape == (4,)  # bips, p_big, p_little, temp
        assert 0 <= outputs[1] < 10.0
        assert 40.0 < outputs[3] < 100.0

    def test_optimizer_sets_targets(self, board):
        from repro.core import ExDOptimizer, TargetChannel

        hw = _RecordingController([4, 4, 1.5, 1.0])
        optimizer = ExDOptimizer(
            [TargetChannel("perf", 2.0, 0.0, 10.0, role="performance")],
            settle_periods=1,
        )
        coordinator = MultilayerCoordinator(hw, hw_optimizer=optimizer)
        _advance(board, 3, coordinator)
        assert optimizer.moves >= 1
        assert hw.targets.shape == (1,)

    def test_reset_clears_state(self, board):
        hw = _RecordingController([4, 4, 1.5, 1.0])
        sw = _RecordingController([4, 1.0, 1.0])
        coordinator = MultilayerCoordinator(hw, sw)
        _advance(board, 2, coordinator)
        coordinator.reset()
        assert coordinator.records == []
        assert coordinator._last_hw_actuation is None
