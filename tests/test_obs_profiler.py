"""Phase profiler and histogram quantile export (registry + merge)."""

import json

import pytest

from repro.obs.profiler import PHASE_OF, PhaseProfiler, phase_summary
from repro.telemetry import MetricsRegistry, TelemetrySession, deactivate
from repro.telemetry.merge import merge_metrics_dicts
from repro.telemetry.registry import quantiles_from_buckets


@pytest.fixture(autouse=True)
def _no_global_session():
    deactivate()
    yield
    deactivate()


# ---------------------------------------------------------------------------
# Histogram.quantile (satellite: p50/p90/p99 export)
# ---------------------------------------------------------------------------
class TestHistogramQuantile:
    def _hist(self, buckets=(1.0, 10.0, 100.0)):
        return MetricsRegistry().histogram("lat_seconds", buckets=buckets)

    def test_empty_histogram_is_zero(self):
        h = self._hist()._default
        assert h.quantile(0.5) == 0.0
        assert h.quantile(0.99) == 0.0

    def test_single_sample(self):
        fam = self._hist()
        fam.observe(5.0)  # lands in the (1, 10] bucket
        h = fam._default
        for q in (0.5, 0.9, 0.99):
            assert 1.0 <= h.quantile(q) <= 10.0

    def test_heavy_tail_separates_quantiles(self):
        fam = self._hist()
        for _ in range(98):
            fam.observe(0.5)  # bulk in the first bucket
        fam.observe(50.0)
        fam.observe(50.0)  # tail in the (10, 100] bucket
        h = fam._default
        assert h.quantile(0.5) <= 1.0
        assert h.quantile(0.99) > 10.0
        assert h.quantile(0.5) <= h.quantile(0.9) <= h.quantile(0.99)

    def test_overflow_saturates_at_highest_finite_bound(self):
        fam = self._hist(buckets=(1.0, 2.0))
        fam.observe(1000.0)  # +Inf bucket only
        assert fam._default.quantile(0.99) == pytest.approx(2.0)

    def test_invalid_q_rejected(self):
        h = self._hist()._default
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_interpolation_within_bucket(self):
        fam = self._hist(buckets=(0.0, 10.0))
        for _ in range(100):
            fam.observe(5.0)  # uniform mass assumed across (0, 10]
        assert fam._default.quantile(0.5) == pytest.approx(5.0)


class TestQuantileExport:
    def _registry(self):
        reg = MetricsRegistry()
        fam = reg.histogram("step_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5):
            fam.observe(v)
        return reg

    def test_prometheus_exposes_quantile_lines(self):
        text = self._registry().render_prometheus()
        for line in ("step_seconds_p50", "step_seconds_p90",
                     "step_seconds_p99"):
            assert line in text

    def test_json_snapshot_carries_quantiles(self):
        snapshot = self._registry().to_dict()
        quantiles = snapshot["step_seconds"]["values"][0]["quantiles"]
        assert set(quantiles) == {"p50", "p90", "p99"}
        assert quantiles["p50"] <= quantiles["p90"] <= quantiles["p99"]

    def test_offline_quantiles_match_live(self):
        reg = self._registry()
        h = reg.histogram("step_seconds")._default
        value = reg.to_dict()["step_seconds"]["values"][0]
        offline = quantiles_from_buckets(value["buckets"], value["count"])
        for q, key in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
            assert offline[key] == pytest.approx(h.quantile(q))

    def test_merge_recomputes_quantiles(self):
        reg_a, reg_b = self._registry(), self._registry()
        merged = merge_metrics_dicts([reg_a.to_dict(), reg_b.to_dict()])
        value = merged["step_seconds"]["values"][0]
        assert value["count"] == 8
        # Same shape of distribution, doubled mass: quantiles unchanged.
        original = reg_a.to_dict()["step_seconds"]["values"][0]["quantiles"]
        for key, quantile in value["quantiles"].items():
            assert quantile == pytest.approx(original[key])


# ---------------------------------------------------------------------------
# PhaseProfiler
# ---------------------------------------------------------------------------
class TestPhaseProfiler:
    def test_span_names_map_to_paper_phases(self):
        assert PHASE_OF["sample"] == "sensing"
        assert PHASE_OF["optimize"] == "optimizer"
        assert PHASE_OF["hw.step"] == PHASE_OF["sw.step"] == "controller"
        assert PHASE_OF["actuate.hw"] == PHASE_OF["actuate.sw"] == "actuation"
        assert PHASE_OF["sim"] == "plant_step"

    def test_observe_and_summary(self):
        reg = MetricsRegistry()
        prof = PhaseProfiler(reg)
        for trace_id in range(1, 11):
            prof.observe("sample", 10.0, trace_id)
            prof.observe("sim", 300.0, trace_id)
            prof.observe("unknown.span", 1.0, trace_id)
        summary = prof.summary()
        assert summary["sensing"]["count"] == 10
        assert summary["plant_step"]["mean_us"] == pytest.approx(300.0)
        assert summary["sensing"]["p50_us"] > 0
        assert "other" in summary  # unmapped names still priced
        assert "sensing" in prof.render()

    def test_sampling_skips_offsample_periods(self):
        prof = PhaseProfiler(MetricsRegistry(), sample_every=4)
        for trace_id in range(1, 41):
            prof.observe("sample", 10.0, trace_id)
        assert prof.sampled == 10  # trace_id % 4 == 0
        assert prof.skipped == 30
        assert prof.summary()["sensing"]["count"] == 10

    def test_session_wires_profiler_into_tracer(self, tmp_path):
        session = TelemetrySession(tmp_path / "tel", profile=True)
        assert session.tracer.profiler is session.profiler
        with session.span("sample"):
            pass
        with session.span("sim"):
            pass
        summary = session.profiler.summary()
        assert summary["sensing"]["count"] == 1
        assert summary["plant_step"]["count"] == 1
        session.close()
        # The profile histogram lands in the exported snapshot.
        metrics = json.loads((tmp_path / "tel" / "metrics.json").read_text())
        assert "control_phase_seconds" in metrics
        assert phase_summary(metrics)["sensing"]["count"] == 1

    def test_profiling_off_by_default(self, tmp_path):
        session = TelemetrySession(tmp_path / "tel")
        assert session.profiler is None
        assert session.tracer.profiler is None
        session.close()

    def test_phase_summary_of_unprofiled_metrics(self):
        assert phase_summary({"other_metric": {"type": "counter"}}) == {}
