"""Property-based tests (hypothesis) on core data structures and invariants."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.board import BIG, LITTLE, Board
from repro.board.specs import default_xu3_spec
from repro.lti import StateSpace, feedback, hinf_norm, linf_norm_grid, static_gain
from repro.robust import BlockStructure, UncertaintyBlock, mu_lower_bound, mu_upper_bound
from repro.signals import QuantizedRange

finite_floats = st.floats(min_value=-100.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False)


class TestQuantizedRangeProperties:
    @given(
        low=st.floats(min_value=-10, max_value=10, allow_nan=False),
        span=st.floats(min_value=0.1, max_value=20, allow_nan=False),
        step=st.floats(min_value=0.01, max_value=5, allow_nan=False),
        value=finite_floats,
    )
    @settings(max_examples=150, deadline=None)
    def test_snap_always_legal_and_idempotent(self, low, span, step, value):
        qr = QuantizedRange(low, low + span, step=step)
        snapped = qr.snap(value)
        assert qr.low - 1e-9 <= snapped <= qr.high + 1e-9
        assert qr.contains(snapped)
        assert qr.snap(snapped) == pytest.approx(snapped)

    @given(
        low=st.floats(min_value=-10, max_value=10, allow_nan=False),
        span=st.floats(min_value=0.1, max_value=20, allow_nan=False),
        step=st.floats(min_value=0.01, max_value=5, allow_nan=False),
        value=finite_floats,
    )
    @settings(max_examples=150, deadline=None)
    def test_snap_error_within_radius(self, low, span, step, value):
        qr = QuantizedRange(low, low + span, step=step)
        clamped = qr.clamp(value)
        assert abs(qr.snap(value) - clamped) <= qr.quantization_radius() + 1e-9

    @given(
        levels=st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False),
                        min_size=1, max_size=8, unique=True),
    )
    @settings(max_examples=100, deadline=None)
    def test_explicit_levels_sorted_and_snappable(self, levels):
        qr = QuantizedRange(min(levels), max(levels), levels=levels)
        assert np.all(np.diff(qr.levels) >= 0)
        for level in levels:
            assert qr.snap(level) == pytest.approx(level)

    @given(
        low=st.floats(min_value=-10, max_value=10, allow_nan=False),
        span=st.floats(min_value=0.1, max_value=20, allow_nan=False),
        step=st.floats(min_value=0.01, max_value=5, allow_nan=False),
        value=finite_floats,
    )
    @settings(max_examples=150, deadline=None)
    def test_quantize_dequantize_round_trip(self, low, span, step, value):
        """snap -> snap_index -> levels[idx] is a lossless round trip."""
        qr = QuantizedRange(low, low + span, step=step)
        snapped = qr.snap(value)
        idx = qr.snap_index(value)
        assert qr.levels[idx] == snapped  # exact: same float both ways
        # Dequantizing the index and re-quantizing lands on the same level.
        assert qr.snap_index(qr.levels[idx]) == idx

    @given(
        low=st.floats(min_value=-10, max_value=10, allow_nan=False),
        span=st.floats(min_value=0.1, max_value=20, allow_nan=False),
        step=st.floats(min_value=0.01, max_value=5, allow_nan=False),
        value=finite_floats,
    )
    @settings(max_examples=150, deadline=None)
    def test_snap_result_is_grid_member(self, low, span, step, value):
        qr = QuantizedRange(low, low + span, step=step)
        snapped = qr.snap(value)
        assert snapped in qr  # __contains__ tolerance membership
        assert any(snapped == lvl for lvl in qr.levels)

    @given(
        low=st.floats(min_value=-10, max_value=10, allow_nan=False),
        span=st.floats(min_value=0.1, max_value=20, allow_nan=False),
        step=st.floats(min_value=0.01, max_value=5, allow_nan=False),
        overshoot=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_saturation_snaps_to_boundary_levels(self, low, span, step,
                                                 overshoot):
        """Out-of-range commands saturate onto the extreme grid levels."""
        qr = QuantizedRange(low, low + span, step=step)
        assert qr.snap(qr.high + overshoot) == qr.levels[-1]
        assert qr.snap(qr.low - overshoot) == qr.levels[0]
        assert qr.clamp(qr.high + overshoot) == qr.high
        assert qr.clamp(qr.low - overshoot) == qr.low


# ----------------------------------------------------------------------
# Randomized board specs driven through the invariant monitor
# ----------------------------------------------------------------------
@st.composite
def board_specs(draw):
    """Randomized (but physically valid) variations of the XU3 spec."""
    base = default_xu3_spec()
    big = dataclasses.replace(
        base.big,
        n_cores=draw(st.integers(min_value=2, max_value=4)),
        freq_range=QuantizedRange(
            0.2, draw(st.sampled_from([1.2, 1.6, 2.0])), step=0.1
        ),
    )
    little = dataclasses.replace(
        base.little,
        n_cores=draw(st.integers(min_value=2, max_value=4)),
        freq_range=QuantizedRange(
            0.2, draw(st.sampled_from([0.8, 1.0, 1.4])), step=0.1
        ),
    )
    sim_dt = draw(st.sampled_from([0.05, 0.1]))
    return dataclasses.replace(
        base,
        big=big,
        little=little,
        sim_dt=sim_dt,
        control_period=sim_dt * draw(st.integers(min_value=4, max_value=10)),
        ambient_temp=draw(st.floats(min_value=30.0, max_value=50.0)),
        thermal_resistance=draw(st.floats(min_value=8.0, max_value=16.0)),
    )


class TestMonitorProperties:
    """Fault-free boards never violate the runtime invariants, whatever the
    spec and however (legally) they are actuated."""

    @given(spec=board_specs(), seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_spec_random_actuation_no_violations(self, spec, seed):
        from repro.verify import InvariantMonitor
        from repro.workloads import make_application

        board = Board([make_application("blackscholes")], spec=spec,
                      seed=seed)
        monitor = InvariantMonitor()
        rng = np.random.default_rng(seed)
        steps = spec.period_steps()
        for _ in range(6):
            for name in (BIG, LITTLE):
                cluster = spec.cluster(name)
                board.set_cluster_frequency(
                    name, float(rng.choice(cluster.freq_range.levels))
                )
                board.set_active_cores(
                    name, int(rng.integers(1, cluster.n_cores + 1))
                )
            board.run_period(steps)
            monitor.check_board(board)
        assert monitor.ok, monitor.summary()

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        freq=st.floats(min_value=-1.0, max_value=5.0, allow_nan=False),
        cores=st.integers(min_value=-3, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_board_api_keeps_arbitrary_commands_legal(self, seed, freq,
                                                      cores):
        """The actuation API snaps/clamps anything, so whatever a (possibly
        buggy) controller commands, the monitor still sees a legal board."""
        from repro.verify import InvariantMonitor
        from repro.workloads import make_application

        spec = default_xu3_spec()
        board = Board([make_application("blackscholes")], spec=spec,
                      seed=seed)
        board.set_cluster_frequency(BIG, freq)
        board.set_active_cores(LITTLE, cores)
        board.run_period(spec.period_steps())
        monitor = InvariantMonitor()
        monitor.check_board(board)
        assert monitor.ok, monitor.summary()


def _random_stable(seed, n=3, dt=1.0):
    gen = np.random.default_rng(seed)
    A = gen.normal(size=(n, n))
    A *= 0.75 / max(np.max(np.abs(np.linalg.eigvals(A))), 1e-9)
    return StateSpace(A, gen.normal(size=(n, 2)), gen.normal(size=(2, n)),
                      gen.normal(size=(2, 2)) * 0.1, dt=dt)


class TestSystemProperties:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_hinf_upper_bounds_grid(self, seed):
        sys_ = _random_stable(seed)
        # hinf_norm bisects to a 1e-4 relative tolerance, so allow that
        # much slack against the gridded lower bound.
        assert hinf_norm(sys_) >= linf_norm_grid(sys_, points=80) * (1 - 1e-3)

    @given(seed=st.integers(min_value=0, max_value=500),
           gain=st.floats(min_value=0.01, max_value=0.4))
    @settings(max_examples=30, deadline=None)
    def test_small_gain_feedback_stable(self, seed, gain):
        """Small-gain theorem: ||G|| < 1 loops close stably."""
        sys_ = _random_stable(seed)
        norm = hinf_norm(sys_)
        scaled = static_gain(np.eye(2) * (gain / max(norm, 1e-9)), dt=1.0)
        from repro.lti import series

        loop = series(scaled, sys_)
        closed = feedback(loop)
        assert closed.is_stable(tol=1e-12)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_series_norm_submultiplicative(self, seed):
        from repro.lti import series

        g1 = _random_stable(seed)
        g2 = _random_stable(seed + 1000)
        assert hinf_norm(series(g1, g2)) <= (
            hinf_norm(g1) * hinf_norm(g2) * (1 + 1e-3)
        )


class TestMuProperties:
    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_mu_sandwich(self, seed):
        """rho-type lower bound <= mu upper bound <= sigma_max."""
        gen = np.random.default_rng(seed)
        M = gen.normal(size=(4, 4)) + 1j * gen.normal(size=(4, 4))
        structure = BlockStructure([
            UncertaintyBlock("full", 2, 2),
            UncertaintyBlock("full", 2, 2),
        ])
        upper, _ = mu_upper_bound(M, structure)
        lower = mu_lower_bound(M, structure, samples=30, seed=seed)
        sigma = np.linalg.svd(M, compute_uv=False)[0]
        assert lower <= upper + 1e-9
        assert upper <= sigma + 1e-9

    @given(seed=st.integers(min_value=0, max_value=300),
           scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=25, deadline=None)
    def test_mu_scales_linearly(self, seed, scale):
        gen = np.random.default_rng(seed)
        M = gen.normal(size=(3, 3)) + 1j * gen.normal(size=(3, 3))
        structure = BlockStructure([
            UncertaintyBlock("full", 1, 1),
            UncertaintyBlock("full", 2, 2),
        ])
        base, _ = mu_upper_bound(M, structure)
        scaled, _ = mu_upper_bound(scale * M, structure)
        assert scaled == pytest.approx(scale * base, rel=5e-2)


class TestOptimizerProperties:
    @given(
        exd_seq=st.lists(st.floats(min_value=0.01, max_value=10.0),
                         min_size=5, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_targets_always_inside_envelopes(self, exd_seq):
        from repro.core import ExDOptimizer, TargetChannel

        opt = ExDOptimizer(
            [
                TargetChannel("p", 2.0, 0.5, 8.0, role="performance"),
                TargetChannel("w", 1.0, 0.1, 3.3, role="power"),
            ],
            settle_periods=1,
        )
        outputs = np.array([2.0, 1.0])
        for exd in exd_seq:
            targets = opt.update(exd, outputs=outputs)
            assert 0.5 <= targets[0] <= 8.0
            assert 0.1 <= targets[1] <= 3.3


class TestWorkloadProperties:
    @given(
        budget=st.floats(min_value=0.5, max_value=20.0),
        threads=st.integers(min_value=1, max_value=8),
        chunks=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_work_conservation(self, budget, threads, chunks):
        """Executing exactly the budget finishes the app, never overshoots."""
        from repro.workloads import Application, Phase

        app = Application("w", [Phase("p", threads, budget)])
        per_chunk = budget / chunks
        guard = 0
        while not app.done and guard < 10 * chunks:
            guard += 1
            runnable = app.runnable_threads()
            if not runnable:
                break
            app.execute(runnable[0], per_chunk, now=guard)
        assert app.completed_instructions == pytest.approx(budget, rel=1e-9)
        assert app.done
