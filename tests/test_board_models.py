"""Tests for the board's component models: cores, power, thermal, sensors."""

import numpy as np
import pytest

from repro.board import (
    BIG,
    LITTLE,
    EmergencyManager,
    PerformanceCounter,
    TemperatureSensor,
    ThermalModel,
    WindowedPowerSensor,
    cluster_power,
    default_xu3_spec,
)
from repro.board.cores import core_execution, memory_traffic_gbs, thread_rate_gips
from repro.workloads import Phase, Thread


@pytest.fixture
def spec():
    return default_xu3_spec()


@pytest.fixture
def compute_phase():
    return Phase("compute", 4, 100.0, cpi_scale=1.0, mpki=0.5)


@pytest.fixture
def memory_phase():
    return Phase("memory", 4, 100.0, cpi_scale=1.0, mpki=20.0)


class TestCores:
    def test_rate_scales_with_frequency_when_compute_bound(self, spec, compute_phase):
        slow = thread_rate_gips(spec.big, 1.0, compute_phase, spec.mem_latency_ns)
        fast = thread_rate_gips(spec.big, 2.0, compute_phase, spec.mem_latency_ns)
        assert fast / slow > 1.8  # near-linear scaling

    def test_rate_saturates_when_memory_bound(self, spec, memory_phase):
        slow = thread_rate_gips(spec.big, 1.0, memory_phase, spec.mem_latency_ns)
        fast = thread_rate_gips(spec.big, 2.0, memory_phase, spec.mem_latency_ns)
        assert fast / slow < 1.4  # memory wall

    def test_big_faster_than_little(self, spec, compute_phase):
        big = thread_rate_gips(spec.big, 1.4, compute_phase, spec.mem_latency_ns)
        little = thread_rate_gips(spec.little, 1.4, compute_phase, spec.mem_latency_ns)
        assert big > 1.5 * little

    def test_time_share_divides_rate(self, spec, compute_phase):
        full = thread_rate_gips(spec.big, 1.0, compute_phase, spec.mem_latency_ns)
        half = thread_rate_gips(spec.big, 1.0, compute_phase, spec.mem_latency_ns,
                                time_share=0.5)
        assert half == pytest.approx(full / 2)

    def test_core_execution_splits_work(self, spec, compute_phase):
        threads = [(Thread(i, "t"), compute_phase) for i in range(2)]
        work, busy, activity = core_execution(
            spec.big, 1.0, threads, dt=0.1, mem_latency_ns=spec.mem_latency_ns
        )
        assert len(work) == 2
        assert work[0] == pytest.approx(work[1])
        assert busy == pytest.approx(1.0)
        assert 0 < activity <= 1.0

    def test_migration_stall_reduces_work(self, spec, compute_phase):
        stalled = Thread(0, "t", migration_stall=0.05)
        clean = Thread(1, "t")
        work_stalled, *_ = core_execution(
            spec.big, 1.0, [(stalled, compute_phase)], 0.1, spec.mem_latency_ns
        )
        work_clean, *_ = core_execution(
            spec.big, 1.0, [(clean, compute_phase)], 0.1, spec.mem_latency_ns
        )
        assert work_stalled[0] < work_clean[0]
        assert stalled.migration_stall == pytest.approx(0.0)

    def test_memory_traffic_positive(self, memory_phase):
        traffic = memory_traffic_gbs([(memory_phase, 1.0)])
        assert traffic > 0


class TestPower:
    def test_monotone_in_frequency(self, spec):
        low = cluster_power(spec.big, 1.0, 4, [1.0] * 4, 60.0).total
        high = cluster_power(spec.big, 2.0, 4, [1.0] * 4, 60.0).total
        assert high > low

    def test_monotone_in_cores(self, spec):
        few = cluster_power(spec.big, 1.5, 2, [1.0] * 2, 60.0).total
        many = cluster_power(spec.big, 1.5, 4, [1.0] * 4, 60.0).total
        assert many > few

    def test_leakage_grows_with_temperature(self, spec):
        cold = cluster_power(spec.big, 1.5, 4, [0.0] * 4, 45.0)
        hot = cluster_power(spec.big, 1.5, 4, [0.0] * 4, 85.0)
        assert hot.leakage > cold.leakage

    def test_off_cluster_draws_nothing(self, spec):
        assert cluster_power(spec.big, 1.5, 0, [], 60.0).total == 0.0

    def test_big_cluster_can_exceed_limit(self, spec):
        """Flat out, the big cluster must be able to violate 3.3 W."""
        flat_out = cluster_power(spec.big, 2.0, 4, [1.0] * 4, 80.0).total
        assert flat_out > spec.power_limit_big * 1.5

    def test_little_cluster_brushes_its_limit(self, spec):
        flat_out = cluster_power(spec.little, 1.4, 4, [1.0] * 4, 70.0).total
        assert flat_out > spec.power_limit_little


class TestThermal:
    def test_steady_state_formula(self):
        model = ThermalModel(40.0, 10.0, 5.0, 0.5)
        assert model.steady_state(2.0, 1.0) == pytest.approx(40 + 10 * 2.5)

    def test_converges_to_steady_state(self):
        model = ThermalModel(40.0, 10.0, 2.0, 0.5)
        for _ in range(2000):
            model.step(2.0, 0.0, 0.01)
        assert model.temperature == pytest.approx(60.0, abs=0.5)

    def test_limit_binds_at_cap_power(self, spec):
        """The paper's operating point: near the caps, temperature matters."""
        model = ThermalModel(spec.ambient_temp, spec.thermal_resistance,
                             spec.thermal_tau, spec.thermal_weight_little)
        steady = model.steady_state(spec.power_limit_big, spec.power_limit_little)
        assert steady > spec.temp_limit  # caps are thermally infeasible sustained


class TestSensors:
    def test_power_sensor_latches_average(self):
        sensor = WindowedPowerSensor(period=0.2, dt=0.1)
        sensor.update(1.0)
        assert sensor.read() == 0.0  # not yet latched
        sensor.update(3.0)
        assert sensor.read() == pytest.approx(2.0)

    def test_power_sensor_holds_between_windows(self):
        sensor = WindowedPowerSensor(period=0.2, dt=0.1)
        for p in (1.0, 1.0, 5.0):
            sensor.update(p)
        assert sensor.read() == pytest.approx(1.0)  # mid-window: still old value

    def test_temp_sensor_noise_free(self):
        sensor = TemperatureSensor(0.0, np.random.default_rng(0))
        assert sensor.update(70.0) == 70.0

    def test_perf_counter_delta(self):
        counter = PerformanceCounter()
        counter.add(1.5)
        assert counter.read_delta() == pytest.approx(1.5)
        counter.add(0.5)
        assert counter.read_delta() == pytest.approx(0.5)
        assert counter.read_cumulative() == pytest.approx(2.0)


class TestEmergency:
    def test_thermal_trip_and_hysteresis(self, spec):
        manager = EmergencyManager(spec)
        manager.update(spec.emergency_temp_trip + 1, {BIG: 0, LITTLE: 0}, 0.05)
        assert manager.state.thermal_throttled
        assert manager.frequency_cap(BIG) == spec.emergency_throttle_freq
        # Clears only below the hysteresis point.
        manager.update(spec.emergency_temp_clear + 1, {BIG: 0, LITTLE: 0}, 0.05)
        assert manager.state.thermal_throttled
        manager.update(spec.emergency_temp_clear - 1, {BIG: 0, LITTLE: 0}, 0.05)
        assert not manager.state.thermal_throttled

    def test_power_trip_needs_sustained_violation(self, spec):
        manager = EmergencyManager(spec)
        over = spec.power_limit_big * spec.emergency_power_factor * 1.1
        manager.update(50.0, {BIG: over, LITTLE: 0}, 0.1)
        assert not manager.state.power_throttled[BIG]
        for _ in range(10):
            manager.update(50.0, {BIG: over, LITTLE: 0}, 0.1)
        assert manager.state.power_throttled[BIG]
        assert manager.core_cap(BIG) == 2

    def test_power_trip_holds_minimum_time(self, spec):
        manager = EmergencyManager(spec)
        over = spec.power_limit_big * spec.emergency_power_factor * 1.1
        for _ in range(12):
            manager.update(50.0, {BIG: over, LITTLE: 0}, 0.1)
        assert manager.state.power_throttled[BIG]
        # Despite instantly-low power, the hold keeps it tripped.
        manager.update(50.0, {BIG: 0.1, LITTLE: 0}, 0.1)
        assert manager.state.power_throttled[BIG]

    def test_no_cap_when_clear(self, spec):
        manager = EmergencyManager(spec)
        assert manager.frequency_cap(BIG) is None
        assert manager.core_cap(BIG) is None
