"""Tests for signal metadata: quantization, signal types, interfaces."""

import numpy as np
import pytest

from repro.signals import (
    ExternalSignal,
    InputSignal,
    InterfaceRecord,
    OutputSignal,
    QuantizedRange,
    exchange_interfaces,
)


class TestQuantizedRange:
    def test_levels_from_step(self):
        qr = QuantizedRange(0.2, 2.0, step=0.1)
        assert qr.n_levels == 19
        assert qr.levels[0] == pytest.approx(0.2)
        assert qr.levels[-1] == pytest.approx(2.0)

    def test_explicit_levels(self):
        qr = QuantizedRange(0, 10, levels=[1, 5, 9])
        assert qr.n_levels == 3
        assert qr.snap(6.9) == 5.0

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            QuantizedRange(2.0, 1.0, step=0.1)

    def test_rejects_levels_outside(self):
        with pytest.raises(ValueError):
            QuantizedRange(0, 1, levels=[2.0])

    def test_clamp(self):
        qr = QuantizedRange(1, 4, step=1)
        assert qr.clamp(-3) == 1.0
        assert qr.clamp(9) == 4.0

    def test_snap_rounds_to_nearest(self):
        qr = QuantizedRange(0.2, 2.0, step=0.1)
        assert qr.snap(1.44) == pytest.approx(1.4)
        assert qr.snap(1.46) == pytest.approx(1.5)

    def test_contains(self):
        qr = QuantizedRange(1, 4, step=1)
        assert 2.0 in qr
        assert 2.5 not in qr

    def test_quantization_radius(self):
        qr = QuantizedRange(0.2, 2.0, step=0.1)
        assert qr.quantization_radius() == pytest.approx(0.05)

    def test_single_level_radius_zero(self):
        qr = QuantizedRange(1, 1, levels=[1.0])
        assert qr.quantization_radius() == 0.0

    def test_iteration_and_len(self):
        qr = QuantizedRange(1, 3, step=1)
        assert list(qr) == [1.0, 2.0, 3.0]
        assert len(qr) == 3

    def test_equality(self):
        assert QuantizedRange(1, 3, step=1) == QuantizedRange(1, 3, step=1)
        assert QuantizedRange(1, 3, step=1) != QuantizedRange(1, 4, step=1)


class TestSignalTypes:
    def test_input_signal_rejects_bad_weight(self):
        with pytest.raises(ValueError, match="weight"):
            InputSignal("f", QuantizedRange(0, 1, step=0.1), weight=0.0)

    def test_output_signal_bounds(self):
        out = OutputSignal("power", 0.10, value_range=4.0, critical=True)
        assert out.absolute_bound == pytest.approx(0.4)

    def test_output_signal_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            OutputSignal("x", 0.0, value_range=1.0)
        with pytest.raises(ValueError):
            OutputSignal("x", 1.5, value_range=1.0)

    def test_external_needs_exactly_one_metadata(self):
        with pytest.raises(ValueError):
            ExternalSignal("x", "layer")
        with pytest.raises(ValueError):
            ExternalSignal("x", "layer", allowed=QuantizedRange(0, 1, step=1),
                           bound=0.5)

    def test_external_value_scale(self):
        ext = ExternalSignal("x", "hw", allowed=QuantizedRange(0, 8, step=1))
        assert ext.value_scale == pytest.approx(8.0)
        ext2 = ExternalSignal("y", "hw", bound=0.4)
        assert ext2.value_scale == pytest.approx(0.4)


class TestInterfaceExchange:
    def _records(self):
        hw = InterfaceRecord(
            "hardware",
            input_levels={"freq_big": QuantizedRange(0.2, 2.0, step=0.1)},
            output_bounds={"temperature": 4.0},
        )
        sw = InterfaceRecord(
            "software",
            input_levels={"n_threads_big": QuantizedRange(0, 8, step=1)},
            output_bounds={"temperature": 5.0, "bips_big": 1.0},
        )
        return hw, sw

    def test_publishes_external_signals(self):
        hw, sw = self._records()
        for_hw, for_sw, common = exchange_interfaces(hw, sw)
        names_hw = {s.name for s in for_hw}
        assert names_hw == {"n_threads_big", "temperature", "bips_big"}
        names_sw = {s.name for s in for_sw}
        assert names_sw == {"freq_big", "temperature"}

    def test_input_externals_carry_levels(self):
        hw, sw = self._records()
        for_hw, _, _ = exchange_interfaces(hw, sw)
        by_name = {s.name: s for s in for_hw}
        assert by_name["n_threads_big"].allowed is not None
        assert by_name["bips_big"].bound == pytest.approx(1.0)

    def test_common_outputs_pair_bounds(self):
        hw, sw = self._records()
        _, _, common = exchange_interfaces(hw, sw)
        assert common == {"temperature": (4.0, 5.0)}

    def test_unknown_signal_raises(self):
        hw, _ = self._records()
        with pytest.raises(KeyError):
            hw.external_signal_for("nonexistent")
