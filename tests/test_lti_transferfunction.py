"""Unit tests for transfer functions and realization."""

import numpy as np
import pytest

from repro.lti import TransferFunction, first_order_lag, tf, tf_to_ss


class TestTransferFunction:
    def test_normalizes_leading_coefficient(self):
        g = tf([2.0], [2.0, 1.0])
        assert g.den[0] == pytest.approx(1.0)
        assert g.num[0] == pytest.approx(1.0)

    def test_rejects_improper(self):
        with pytest.raises(ValueError, match="proper"):
            tf([1.0, 0.0, 0.0], [1.0, 1.0])

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError, match="denominator"):
            tf([1.0], [0.0])

    def test_evaluation(self):
        g = tf([1.0], [1.0, 1.0])  # 1/(s+1)
        assert g(0.0) == pytest.approx(1.0)
        assert abs(g(1j)) == pytest.approx(1 / np.sqrt(2))

    def test_poles_zeros(self):
        g = tf([1.0, 2.0], [1.0, 3.0, 2.0])
        assert sorted(g.poles().real) == pytest.approx([-2.0, -1.0])
        assert g.zeros() == pytest.approx([-2.0])

    def test_stability(self):
        assert tf([1.0], [1.0, 1.0]).is_stable()
        assert not tf([1.0], [1.0, -1.0]).is_stable()
        assert tf([1.0], [1.0, -0.5], dt=1.0).is_stable()
        assert not tf([1.0], [1.0, -1.5], dt=1.0).is_stable()

    def test_multiplication(self):
        g = tf([1.0], [1.0, 1.0]) * tf([1.0], [1.0, 2.0])
        assert g.order() == 2
        assert g(0.0) == pytest.approx(0.5)

    def test_addition(self):
        g = tf([1.0], [1.0, 1.0]) + tf([1.0], [1.0, 1.0])
        assert g(0.0) == pytest.approx(2.0)

    def test_scalar_ops(self):
        g = 3.0 * tf([1.0], [1.0, 1.0])
        assert g(0.0) == pytest.approx(3.0)


class TestRealization:
    def test_tf_to_ss_matches_response(self):
        g = tf([2.0, 1.0], [1.0, 3.0, 2.0])
        sys_ = tf_to_ss(g)
        for s in (0.0, 1j, 2.0 + 1j):
            assert sys_.frequency_response(s)[0, 0] == pytest.approx(g(s))

    def test_feedthrough_split(self):
        g = tf([1.0, 0.0], [1.0, 1.0])  # s/(s+1) = 1 - 1/(s+1)
        sys_ = tf_to_ss(g)
        assert sys_.D[0, 0] == pytest.approx(1.0)

    def test_static_tf(self):
        sys_ = tf([5.0], [1.0]).to_ss()
        assert sys_.n_states == 0
        assert sys_.D[0, 0] == pytest.approx(5.0)

    def test_first_order_lag_dc_and_properness(self):
        lag = first_order_lag(2.5, 0.6, dt=0.5)
        assert lag.is_discrete
        assert lag.dc_gain()[0, 0] == pytest.approx(2.5)
        assert lag.D[0, 0] == pytest.approx(0.0)  # strictly proper

    def test_first_order_lag_rejects_bad_pole(self):
        with pytest.raises(ValueError, match="pole"):
            first_order_lag(1.0, 1.5, dt=0.5)
