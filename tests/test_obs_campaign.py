"""Campaign event stream, health analysis, and the status/report commands.

The acceptance scenario lives in ``TestCampaignLifecycle``: a
checkpointed campaign is chaos-killed mid-cell, resumed, and ``repro
status`` / ``repro report`` must tell that story correctly from the
append-only ``events.jsonl``.
"""

import json
from types import SimpleNamespace

import pytest

from repro.__main__ import main
from repro.experiments.engine import parallel_map
from repro.obs import (
    CampaignEvents,
    analyze_events,
    build_report,
    events_path,
    load_health,
    read_events,
    render_status,
    to_html,
)
from repro.runtime import ChaosPolicy, RetryPolicy

CONTEXT = SimpleNamespace(char_fingerprint="obs-test", overrides={})

# Fast backoff so retry-path tests stay sub-second.
FAST = dict(backoff_base=0.01, backoff_max=0.05, jitter=0.0)


def _double(context, x):
    return x * 2


def _tasks(n=4):
    return [("call", (_double, (i,), {})) for i in range(n)]


# ---------------------------------------------------------------------------
# Event stream primitives
# ---------------------------------------------------------------------------
class TestEventStream:
    def test_emit_read_round_trip(self, tmp_path):
        with CampaignEvents(events_path(tmp_path)) as events:
            events.emit("campaign.begin", cells=3)
            events.emit("cell.completed", index=0, label="a")
        records, skipped = read_events(tmp_path)
        assert skipped == 0
        assert [r["event"] for r in records] == ["campaign.begin",
                                                 "cell.completed"]
        assert records[0]["cells"] == 3
        assert records[1]["t"] > 0  # wall-clock stamped

    def test_torn_tail_line_skipped_with_count(self, tmp_path):
        path = events_path(tmp_path)
        with CampaignEvents(path) as events:
            events.emit("campaign.begin", cells=1)
            events.emit("cell.completed", index=0)
        with open(path, "a") as fh:
            fh.write('{"event": "cell.comp')  # SIGKILL mid-write
        records, skipped = read_events(tmp_path)
        assert len(records) == 2
        assert skipped == 1

    def test_non_event_json_lines_skipped(self, tmp_path):
        path = events_path(tmp_path)
        path.write_text('{"event": "campaign.begin"}\n[1, 2]\n{"x": 1}\n')
        records, skipped = read_events(path)
        assert len(records) == 1
        assert skipped == 2

    def test_missing_stream_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no campaign event"):
            read_events(tmp_path)

    def test_emit_failure_never_raises(self, tmp_path):
        events = CampaignEvents(events_path(tmp_path))
        events.emit("campaign.begin", bad=object())  # unserializable
        assert events.failed
        events.emit("cell.completed", index=0)  # silently dropped
        assert events.emitted == 0


# ---------------------------------------------------------------------------
# Health folding
# ---------------------------------------------------------------------------
class TestHealthAnalysis:
    def test_in_flight_progress_and_eta(self):
        records = [
            {"event": "campaign.begin", "t": 100.0, "cells": 10,
             "resumed": 2},
            {"event": "cell.completed", "t": 104.0, "index": 2},
            {"event": "cell.completed", "t": 108.0, "index": 3},
        ]
        health = analyze_events(records)
        assert health.total == 10
        assert health.completed == 2 and health.resumed == 2
        assert health.done == 4 and health.remaining == 6
        assert health.in_flight
        assert health.rate == pytest.approx(0.25)
        assert health.eta == pytest.approx(24.0)

    def test_retries_and_timeouts_span_all_runs(self):
        records = [
            {"event": "campaign.begin", "t": 0.0, "cells": 2, "resumed": 0},
            {"event": "cell.retried", "t": 1.0, "reason": "worker-died",
             "attempt": 0},
            {"event": "cell.timeout", "t": 2.0, "index": 1},
            {"event": "campaign.begin", "t": 10.0, "cells": 2, "resumed": 1},
            {"event": "cell.retried", "t": 11.0, "reason": "exception",
             "attempt": 0},
            {"event": "cell.completed", "t": 12.0, "index": 1},
            {"event": "campaign.end", "t": 13.0, "cells": 2},
        ]
        health = analyze_events(records)
        assert health.runs == 2
        assert health.retries == 2  # both runs count
        assert health.retry_reasons == {"worker-died": 1, "exception": 1}
        assert health.timeouts == 1
        assert health.finished
        # Progress reflects only the current (second) run.
        assert health.completed == 1 and health.resumed == 1

    def test_failures_carry_context(self):
        records = [
            {"event": "campaign.begin", "t": 0.0, "cells": 1, "resumed": 0},
            {"event": "cell.failed", "t": 1.0, "index": 0, "label": "c",
             "reason": "timeout", "attempts": 3},
        ]
        health = analyze_events(records)
        assert health.failed == 1
        assert health.failures[0]["label"] == "c"
        assert health.failures[0]["reason"] == "timeout"
        assert health.to_dict()["done"] == 1


# ---------------------------------------------------------------------------
# Engine emission + lifecycle (the acceptance scenario)
# ---------------------------------------------------------------------------
class TestCampaignLifecycle:
    def test_checkpointed_run_emits_full_stream(self, tmp_path):
        results = parallel_map(_tasks(), CONTEXT, checkpoint=tmp_path,
                               resume=True)
        assert results == [0, 2, 4, 6]
        records, skipped = read_events(tmp_path)
        assert skipped == 0
        kinds = [r["event"] for r in records]
        assert kinds[0] == "campaign.begin"
        assert kinds[-1] == "campaign.end"
        assert kinds.count("cell.completed") == 4
        assert kinds.count("cell.checkpointed") == 4
        assert records[-1]["failed"] == 0

    def test_resume_appends_second_run(self, tmp_path):
        parallel_map(_tasks(), CONTEXT, checkpoint=tmp_path, resume=True)
        parallel_map(_tasks(), CONTEXT, checkpoint=tmp_path, resume=True)
        health = load_health(tmp_path)
        assert health.runs == 2
        assert health.resumed == 4 and health.completed == 0
        assert health.finished

    def test_no_journal_no_telemetry_no_stream(self, tmp_path):
        parallel_map(_tasks(), CONTEXT)
        assert not events_path(tmp_path).exists()

    def test_killed_then_resumed_campaign(self, tmp_path):
        """Chaos kill mid-campaign, salvage, resume: status tells the story."""
        chaos = ChaosPolicy(kill_cells=(1,), first_attempt_only=False)
        results = parallel_map(
            _tasks(), CONTEXT, jobs=2, checkpoint=tmp_path, resume=True,
            chaos=chaos, on_error="collect", prime=[],
            backoff=RetryPolicy(max_retries=1, **FAST))
        # Cell 1 is killed on every attempt and salvaged as a failure.
        assert [r for i, r in enumerate(results) if i != 1] == [0, 4, 6]
        health = load_health(tmp_path)
        assert health.failed == 1
        assert health.retries >= 1
        assert health.retry_reasons.get("worker-died", 0) >= 1
        assert health.failures[0]["reason"] == "worker-died"

        # Resume without chaos: only the dead cell re-runs, and the
        # healed campaign reports two runs with three resumed cells.
        results = parallel_map(_tasks(), CONTEXT, jobs=2, prime=[],
                               checkpoint=tmp_path, resume=True)
        assert results == [0, 2, 4, 6]
        health = load_health(tmp_path)
        assert health.runs == 2
        assert health.resumed == 3 and health.completed == 1
        assert health.finished and health.remaining == 0
        # History still remembers the first run's casualties.
        assert health.retry_reasons.get("worker-died", 0) >= 1

        status = render_status(tmp_path)
        assert "finished" in status
        assert "resumed 1 time(s)" in status
        assert "4/4" in status

    def test_supervised_stream_has_started_and_retried(self, tmp_path):
        chaos = ChaosPolicy(error_cells=(2,))
        parallel_map(_tasks(), CONTEXT, jobs=2, checkpoint=tmp_path,
                     chaos=chaos, backoff=RetryPolicy(max_retries=2, **FAST),
                     on_error="collect", prime=[])
        kinds = [r["event"] for r in read_events(tmp_path)[0]]
        assert "cell.started" in kinds
        assert "cell.retried" in kinds
        assert kinds.count("cell.completed") == 4  # retry succeeded


# ---------------------------------------------------------------------------
# CLI: repro status / repro report / repro trace failure modes
# ---------------------------------------------------------------------------
class TestStatusReportCli:
    @pytest.fixture()
    def campaign_dir(self, tmp_path):
        parallel_map(_tasks(), CONTEXT, checkpoint=tmp_path, resume=True)
        return tmp_path

    def test_status_renders_progress(self, campaign_dir, capsys):
        assert main(["status", str(campaign_dir)]) == 0
        out = capsys.readouterr().out
        assert "[finished]" in out
        assert "4/4 (100%)" in out
        assert "journal: 4 cell(s) on disk" in out

    def test_status_missing_stream_exits_2(self, tmp_path, capsys):
        assert main(["status", str(tmp_path)]) == 2
        assert "no campaign event stream" in capsys.readouterr().err

    def test_report_stdout_markdown(self, campaign_dir, capsys):
        assert main(["report", str(campaign_dir)]) == 0
        out = capsys.readouterr().out
        assert "# Campaign report" in out
        assert "## Health" in out
        assert "## Control quality" in out

    def test_report_files_and_html(self, campaign_dir, tmp_path, capsys):
        md = tmp_path / "r.md"
        html = tmp_path / "r.html"
        assert main(["report", str(campaign_dir), "--out", str(md),
                     "--html", str(html), "--title", "t7"]) == 0
        assert "# Campaign report: t7" in md.read_text()
        page = html.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "<table>" in page and "</html>" in page

    def test_report_empty_dir_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) == 2
        assert "no campaign artifacts" in capsys.readouterr().err

    def test_trace_empty_dir_exits_2(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path)]) == 2
        assert "no telemetry artifacts" in capsys.readouterr().err

    def test_trace_missing_dir_exits_2(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "nope")]) == 2
        assert "not a telemetry directory" in capsys.readouterr().err

    def test_report_on_telemetry_only_dir(self, tmp_path, capsys):
        from repro.telemetry import TelemetrySession

        session = TelemetrySession(tmp_path, profile=True)
        with session.span("sample"):
            pass
        session.close()
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "## Control-loop phase profile" in out
        assert "sensing" in out

    def test_html_escapes_markup(self):
        page = to_html("# a <b> & c\n\nplain <script>")
        assert "&lt;b&gt;" in page and "&lt;script&gt;" in page
