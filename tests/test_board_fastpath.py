"""Bit-identity of the vectorized period stepping (board fast path).

``Board.run_period`` must produce exactly the state scalar ``step()``-ing
produces — same floats, same RNG stream, same traces — across actuation
changes, hotplug stalls, emergency-firmware trips, and fault injection
(where the planner must refuse and fall back to scalar stepping).
"""

import dataclasses

import numpy as np
import pytest

from repro.board import BIG, LITTLE, Board, default_xu3_spec
from repro.board.fastpath import plan_window
from repro.workloads import make_application, make_mix


def _drive(board, use_period, sim_time, actuate=None):
    """Run a deterministic control schedule to ``sim_time`` seconds."""
    period_steps = board.spec.period_steps()
    i = 0
    while not board.done and board.time < sim_time:
        if actuate is not None:
            actuate(board, i)
        if use_period:
            board.run_period(period_steps)
        else:
            for _ in range(period_steps):
                if board.done:
                    break
                board.step()
        i += 1
    return board


def _assert_identical(a, b):
    assert a.time == b.time
    assert a.energy == b.energy
    assert a.thermal.temperature == b.thermal.temperature
    assert a.counters() == b.counters()
    assert [app.done for app in a.applications] == [
        app.done for app in b.applications
    ]
    if a.trace is not None and b.trace is not None:
        ta, tb = a.trace.as_arrays(), b.trace.as_arrays()
        assert set(ta) == set(tb)
        for key in ta:
            assert np.array_equal(np.asarray(ta[key]), np.asarray(tb[key])), (
                f"trace {key} diverged"
            )


def _pair(workload="blmc", spec=None, seed=13, record=True):
    spec = spec or default_xu3_spec()
    mk = (lambda: make_mix(workload)) if workload in (
        "blmc", "stga", "blst", "mcga"
    ) else (lambda: make_application(workload))
    scalar = Board(mk(), spec, seed=seed, record=record)
    scalar.enable_fast_path = False
    fast = Board(mk(), spec, seed=seed, record=record)
    fast.enable_fast_path = True
    return scalar, fast


class TestRunPeriodEquivalence:
    def test_steady_actuation(self):
        def actuate(board, i):
            freqs = [1.6, 2.0, 1.2, 0.8, 1.8]
            board.set_cluster_frequency(BIG, freqs[i % len(freqs)])
            board.set_cluster_frequency(LITTLE, round(1.0 + 0.2 * (i % 3), 1))

        scalar, fast = _pair()
        _drive(scalar, False, 90.0, actuate)
        _drive(fast, True, 90.0, actuate)
        _assert_identical(scalar, fast)

    def test_hotplug_and_placement_changes(self):
        def actuate(board, i):
            if i % 3 == 0:
                board.set_active_cores(BIG, 2 + (i // 3) % 3)
            if i % 5 == 0:
                board.set_active_cores(LITTLE, 1 + (i // 5) % 4)
            if i % 4 == 2:
                board.set_placement_knobs(4 + i % 4, 1.0 + 0.5 * (i % 2), 2.0)

        scalar, fast = _pair()
        _drive(scalar, False, 90.0, actuate)
        _drive(fast, True, 90.0, actuate)
        _assert_identical(scalar, fast)

    def test_emergency_trips(self):
        # Force both thermal and power trips mid-window: the fast path has
        # to end windows on emergency state changes and stay exact.
        spec = dataclasses.replace(
            default_xu3_spec(), emergency_temp_trip=70.0,
            emergency_temp_clear=64.0, emergency_power_factor=1.1,
        )

        def actuate(board, i):
            board.set_cluster_frequency(BIG, 2.0)
            board.set_cluster_frequency(LITTLE, 1.4)

        scalar, fast = _pair(spec=spec, seed=5)
        _drive(scalar, False, 120.0, actuate)
        _drive(fast, True, 120.0, actuate)
        assert scalar.emergency.state.trip_count > 0  # the trips happened
        _assert_identical(scalar, fast)

    def test_single_program_completion(self):
        scalar, fast = _pair(workload="blackscholes", seed=3)
        _drive(scalar, False, 600.0)
        _drive(fast, True, 600.0)
        assert scalar.done and fast.done
        _assert_identical(scalar, fast)

    def test_run_period_returns_steps_executed(self):
        _, fast = _pair()
        period_steps = fast.spec.period_steps()
        assert fast.run_period(period_steps) == period_steps

    def test_faults_force_scalar_fallback(self):
        # A FaultInjector installs board.fault_hooks; the planner must
        # refuse and run_period must still match scalar stepping exactly.
        from repro.faults import FaultInjector, default_fault_matrix

        campaign = default_fault_matrix(fault_time=5.0, quick=True)[0][1]

        def faulted(use_period):
            board = Board(make_mix("blmc"), default_xu3_spec(), seed=11,
                          record=True)
            board.enable_fast_path = use_period
            injector = FaultInjector(board, campaign, seed=11)
            assert plan_window(board) is None  # hooks installed -> refuse
            period_steps = board.spec.period_steps()
            while not board.done and board.time < 60.0:
                board.set_cluster_frequency(BIG, 1.8)
                if use_period:
                    executed = board.run_period(period_steps)
                else:
                    executed = 0
                    for _ in range(period_steps):
                        if board.done:
                            break
                        board.step()
                        executed += 1
                for _ in range(executed):
                    injector.advance()
            return board

        scalar = faulted(False)
        fast = faulted(True)
        _assert_identical(scalar, fast)

    def test_disable_flag_stays_scalar(self):
        board = Board(make_mix("blmc"), default_xu3_spec(), seed=1,
                      record=False)
        board.enable_fast_path = False
        period_steps = board.spec.period_steps()
        assert board.run_period(period_steps) == period_steps


class TestPeriodStepsValidation:
    def test_default_spec_divides(self):
        assert default_xu3_spec().period_steps() == 10

    def test_non_divisible_grid_rejected(self):
        with pytest.raises(ValueError, match="evenly divide"):
            default_xu3_spec(sim_dt=0.07)

    def test_non_positive_dt_rejected(self):
        with pytest.raises(ValueError):
            default_xu3_spec(sim_dt=0.0)

    def test_replace_revalidates(self):
        with pytest.raises(ValueError, match="evenly divide"):
            dataclasses.replace(default_xu3_spec(), control_period=0.333)
