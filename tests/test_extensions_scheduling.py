"""Tests for the gain-scheduling machinery."""

import numpy as np
import pytest

from repro.extensions import GainScheduledController, capacity_utilization


class _ConstController:
    def __init__(self, actuation):
        self.actuation = list(actuation)
        self.targets = np.zeros(4)
        self.reset_count = 0

    def set_targets(self, targets):
        self.targets = np.asarray(targets, dtype=float)

    def reset(self):
        self.reset_count += 1

    def step(self, outputs, externals):
        return list(self.actuation)


def _selector_on_first_output(outputs, externals, last):
    return "memory" if outputs[0] < 1.0 else "compute"


@pytest.fixture
def scheduled():
    return GainScheduledController(
        {"compute": _ConstController([1, 1, 1, 1]),
         "memory": _ConstController([2, 2, 2, 2])},
        _selector_on_first_output,
        hysteresis=3,
    )


class TestCapacityUtilization:
    def test_full_utilization(self):
        # 4 big at 2 GHz / cpi 1.15 -> peak ~6.96; delivered the same.
        peak = 4 * 2.0 / 1.15
        assert capacity_utilization(peak, 4, 0, 2.0, 0.0) == pytest.approx(1.0)

    def test_memory_bound_reads_low(self):
        assert capacity_utilization(2.0, 4, 4, 2.0, 1.4) < 0.3


class TestGainScheduledController:
    def test_starts_on_initial_member(self, scheduled):
        assert scheduled.step([5.0], []) == [1, 1, 1, 1]
        assert scheduled.active == "compute"

    def test_hysteresis_delays_switch(self, scheduled):
        for _ in range(2):
            assert scheduled.step([0.1], []) == [1, 1, 1, 1]
        # Third consecutive memory vote flips the active member.
        assert scheduled.step([0.1], []) == [2, 2, 2, 2]
        assert scheduled.active == "memory"
        assert scheduled.switches == 1

    def test_votes_reset_on_agreement(self, scheduled):
        scheduled.step([0.1], [])
        scheduled.step([0.1], [])
        scheduled.step([5.0], [])  # agreement with active resets the count
        scheduled.step([0.1], [])
        scheduled.step([0.1], [])
        assert scheduled.active == "compute"  # never reached 3 in a row

    def test_targets_broadcast(self, scheduled):
        scheduled.set_targets([1, 2, 3, 4])
        for member in scheduled.members.values():
            assert member.targets == pytest.approx([1, 2, 3, 4])

    def test_reset_propagates(self, scheduled):
        scheduled.step([0.1], [])
        scheduled.reset()
        assert all(m.reset_count == 1 for m in scheduled.members.values())
        assert scheduled.switches == 0

    def test_rejects_unknown_initial(self):
        with pytest.raises(ValueError):
            GainScheduledController(
                {"compute": _ConstController([1])},
                _selector_on_first_output, initial="nope",
            )
