"""Tests for repro.serve: protocol, coalescing, batching, admission.

The expensive integration tests share one background server (module
scope) over the session design context; behaviours that need a special
configuration — a tiny admission bound, a corruptible result store, a
deadline — spin up their own short-lived server.  ``sleep`` requests
exercise the queueing machinery (coalescing, admission, deadlines)
deterministically, without simulating anything.
"""

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve import (
    ProtocolError,
    ServeClient,
    metrics_from_wire,
    metrics_to_wire,
    parse_request,
    run_loadgen,
    serve_background,
)
from repro.serve.protocol import ServeRequest, result_to_wire


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_parse_run_request_normalizes(self):
        request = parse_request({"kind": "run", "scheme":
                                 "coordinated-heuristic",
                                 "workload": "mcf", "seed": 3,
                                 "max_time": 12.5, "record": True})
        assert request.kind == "run"
        assert request.scheme == "coordinated-heuristic"
        assert request.workload == "mcf"
        assert request.seed == 3
        assert request.max_time == 12.5
        assert request.record is True
        assert request.bankable
        assert request.bank_group == (12.5, True)
        assert request.task() == ("cell", ("coordinated-heuristic", "mcf",
                                           3, 12.5, True))

    def test_parse_defaults(self):
        request = parse_request({"scheme": "decoupled-heuristic",
                                 "workload": "blackscholes"})
        assert request.kind == "run"
        assert request.seed == 7
        assert request.max_time == 600.0
        assert request.record is False
        assert request.deadline_s is None

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {"kind": "dance"},
        {"kind": "run", "scheme": "no-such-scheme", "workload": "mcf"},
        {"kind": "run", "scheme": "coordinated-heuristic", "workload": ""},
        {"kind": "run", "scheme": "coordinated-heuristic",
         "workload": "no-such-workload"},
        {"kind": "run", "scheme": "coordinated-heuristic",
         "workload": "mcf", "seed": "seven"},
        {"kind": "run", "scheme": "coordinated-heuristic",
         "workload": "mcf", "seed": True},
        {"kind": "run", "scheme": "coordinated-heuristic",
         "workload": "mcf", "max_time": -1.0},
        {"kind": "run", "scheme": "coordinated-heuristic",
         "workload": "mcf", "deadline_s": "soon"},
        {"kind": "sleep", "duration": -0.5},
    ])
    def test_parse_rejects_malformed(self, payload):
        with pytest.raises(ProtocolError):
            parse_request(payload)

    def test_fingerprint_is_the_checkpoint_identity(self, design_context):
        from repro.runtime import task_key

        request = parse_request({"scheme": "coordinated-heuristic",
                                 "workload": "mcf", "seed": 5,
                                 "max_time": 8.0})
        expected = task_key(design_context,
                            ("cell", ("coordinated-heuristic", "mcf", 5,
                                      8.0, False)))
        assert request.fingerprint(design_context) == expected
        # deadline / no_cache are delivery options, not identity
        twin = parse_request({"scheme": "coordinated-heuristic",
                              "workload": "mcf", "seed": 5, "max_time": 8.0,
                              "deadline_s": 1.0, "no_cache": True})
        assert twin.fingerprint(design_context) == expected

    def test_metrics_wire_round_trip_bit_exact(self):
        from repro.experiments.metrics import RunMetrics

        metrics = RunMetrics(
            scheme="coordinated-heuristic", workload="mcf",
            execution_time=1.0 / 3.0, energy=np.pi * 1e3, completed=True,
            trace={"times": np.array([0.1, 0.2, 0.30000000000000004]),
                   "power": np.array([1e-300, 1e300, 5.5])},
            notes={"emergency_trips": 0, "np_float": np.float64(2.5)},
        )
        wire = json.loads(json.dumps(metrics_to_wire(metrics)))
        back = metrics_from_wire(wire)
        assert back.execution_time == metrics.execution_time
        assert back.energy == metrics.energy
        assert back.completed is True
        for name, arr in metrics.trace.items():
            assert np.array_equal(back.trace[name], arr)

    def test_metrics_wire_handles_nonfinite(self):
        from repro.experiments.metrics import RunMetrics

        metrics = RunMetrics(
            scheme="coordinated-heuristic", workload="mcf",
            execution_time=float("nan"), energy=float("inf"),
            completed=False,
            trace={"temps": np.array([float("-inf"), float("nan"), 1.0])},
            notes={},
        )
        # the stdlib encoder's NaN/Infinity extension must survive a
        # full dumps/loads cycle
        wire = json.loads(json.dumps(metrics_to_wire(metrics)))
        back = metrics_from_wire(wire)
        assert np.isnan(back.execution_time)
        assert back.energy == float("inf")
        assert np.isneginf(back.trace["temps"][0])
        assert np.isnan(back.trace["temps"][1])

    def test_result_to_wire_dispatch(self):
        from repro.runtime import CellFailure

        failure = CellFailure(index=0, label="x", reason="timeout",
                              attempts=2, error="boom", key="k")
        wire = result_to_wire(failure)
        assert wire["type"] == "cell_failure"
        assert wire["reason"] == "timeout"
        assert result_to_wire({"kind": "sleep"}) == {"kind": "sleep"}

    def test_sleep_request_round_trip(self):
        request = parse_request({"kind": "sleep", "duration": 0.25,
                                 "nonce": "abc"})
        assert request.task()[0] == "call"
        assert "sleep" in request.label()
        assert parse_request(request.to_dict()) == request

    def test_run_request_to_dict_round_trip(self):
        request = parse_request({"scheme": "yukta-hwssv-osheur",
                                 "workload": "fluidanimate", "seed": 11,
                                 "max_time": 4.0, "record": True,
                                 "deadline_s": 9.0, "no_cache": True})
        assert parse_request(request.to_dict()) == request


# ---------------------------------------------------------------------------
# The shared background server
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def server(design_context, tmp_path_factory):
    store = tmp_path_factory.mktemp("serve-store")
    with serve_background(design_context, jobs=0, batch=4, batch_wait=0.05,
                          cache=str(store)) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServeClient(server.url, timeout=60.0) as c:
        yield c


class TestServeBasics:
    def test_healthz_and_root(self, client):
        health = client.healthz()
        assert health["ok"] is True
        status, body = client.request("GET", "/")
        assert status == 200
        assert "/run" in json.dumps(body)

    def test_run_executes_then_caches(self, client, design_context):
        from repro.experiments import run_workload

        request = {"kind": "run", "scheme": "coordinated-heuristic",
                   "workload": "blackscholes", "seed": 21, "max_time": 2.0,
                   "record": True}
        first = client.run(request)
        assert first["status"] == 200 and first["ok"]
        assert first["source"] == "executed"
        second = client.run(request)
        assert second["status"] == 200
        assert second["source"] == "cache"
        assert second["fingerprint"] == first["fingerprint"]
        # and both are bit-identical to the direct in-process run
        direct = run_workload("coordinated-heuristic", "blackscholes",
                              design_context, seed=21, max_time=2.0,
                              record=True)
        for response in (first, second):
            back = metrics_from_wire(response["result"])
            assert back.execution_time == direct.execution_time
            assert back.energy == direct.energy
            for name, arr in direct.trace.items():
                assert np.array_equal(back.trace[name], arr)

    def test_bad_request_is_400(self, client):
        response = client.run({"kind": "run", "scheme": "nope",
                               "workload": "mcf"})
        assert response["status"] == 400
        assert response["ok"] is False
        assert "scheme" in response["detail"]

    def test_unknown_route_is_404(self, client):
        status, _ = client.request("GET", "/no-such-endpoint")
        assert status == 404

    def test_stats_shape(self, client):
        stats = client.stats()
        for field in ("requests_total", "executed", "coalesced", "cached",
                      "rejected", "coalesce_hit_rate", "outstanding",
                      "queue_limit", "bank_batches", "store"):
            assert field in stats
        assert stats["store"] is not None

    def test_metrics_404_without_telemetry(self, client):
        status, _ = client.request("GET", "/metrics")
        assert status == 404


class TestCoalescing:
    def test_racing_identical_sleeps_execute_once(self, server):
        """N racing requests with one fingerprint -> exactly 1 execution."""
        with ServeClient(server.url) as probe:
            before = probe.stats()
        request = {"kind": "sleep", "duration": 0.4,
                   "nonce": "race-deterministic"}

        def _fire(_):
            with ServeClient(server.url, timeout=30.0) as c:
                return c.run(request, timeout=30.0)

        with ThreadPoolExecutor(max_workers=5) as pool:
            responses = list(pool.map(_fire, range(5)))
        assert all(r["status"] == 200 for r in responses)
        sources = sorted(r["source"] for r in responses)
        assert sources.count("executed") == 1
        assert sources.count("coalesced") == 4
        # every follower got the leader's exact payload
        nonces = {json.dumps(r["result"], sort_keys=True)
                  for r in responses}
        assert len(nonces) == 1
        with ServeClient(server.url) as probe:
            after = probe.stats()
        assert after["executed"] - before["executed"] == 1
        assert after["coalesced"] - before["coalesced"] >= 4

    def test_racing_identical_cells_execute_once(self, server):
        """Same race on a real simulation cell: one execution, identical
        bit-patterns everywhere (in-flight coalesce or store hit)."""
        request = {"kind": "run", "scheme": "decoupled-heuristic",
                   "workload": "mcf", "seed": 77, "max_time": 2.0,
                   "record": True}

        def _fire(_):
            with ServeClient(server.url, timeout=60.0) as c:
                return c.run(request, timeout=60.0)

        with ThreadPoolExecutor(max_workers=6) as pool:
            responses = list(pool.map(_fire, range(6)))
        assert all(r["status"] == 200 for r in responses)
        assert sum(r["source"] == "executed" for r in responses) == 1
        payloads = {json.dumps(r["result"], sort_keys=True)
                    for r in responses}
        assert len(payloads) == 1

    def test_no_cache_still_coalesces_but_skips_store(self, server):
        request = {"kind": "run", "scheme": "coordinated-heuristic",
                   "workload": "fluidanimate", "seed": 91, "max_time": 2.0,
                   "no_cache": True}
        with ServeClient(server.url, timeout=60.0) as c:
            first = c.run(request, timeout=60.0)
            second = c.run(request, timeout=60.0)
        assert first["source"] == "executed"
        assert second["source"] == "executed"  # never stored, never warm


class TestBatchingAndLoadgen:
    def test_concurrent_bankable_cells_pack_into_banks(self, server):
        with ServeClient(server.url) as probe:
            before = probe.stats()
        requests = [
            {"kind": "run", "scheme": "coordinated-heuristic",
             "workload": w, "seed": 400 + i, "max_time": 3.0}
            for i, w in enumerate(["blackscholes", "mcf", "fluidanimate",
                                   "blackscholes", "mcf", "fluidanimate"])
        ]

        def _fire(request):
            with ServeClient(server.url, timeout=60.0) as c:
                return c.run(request, timeout=60.0)

        with ThreadPoolExecutor(max_workers=len(requests)) as pool:
            responses = list(pool.map(_fire, requests))
        assert all(r["status"] == 200 for r in responses)
        with ServeClient(server.url) as probe:
            after = probe.stats()
        assert after["bank_batches"] > before["bank_batches"]
        assert after["banked_cells"] - before["banked_cells"] >= 2

    def test_duplicate_heavy_loadgen_coalesces(self, server):
        report = run_loadgen(server.url, requests=20, rate=0.0,
                             duplicates=0.5, seed=12, max_time=2.0,
                             timeout=120.0)
        assert report.all_ok, report.render()
        assert report.coalesce_hit_rate > 0.0
        assert report.sent == 20
        assert report.percentile(99) >= report.percentile(50)
        wire = report.to_dict()
        assert wire["ok"] == 20
        assert wire["coalesce_hit_rate"] > 0.0

    def test_loadgen_stream_is_deterministic(self):
        from repro.serve import generate_requests

        a = generate_requests(30, seed=5, duplicates=0.4, max_time=3.0)
        b = generate_requests(30, seed=5, duplicates=0.4, max_time=3.0)
        assert a == b
        c = generate_requests(30, seed=6, duplicates=0.4, max_time=3.0)
        assert a != c
        # the duplicate ratio materializes as repeated payloads
        unique = {json.dumps(r, sort_keys=True) for r in a}
        assert len(unique) < len(a)


class TestAdmissionAndDeadlines:
    def test_queue_full_is_structured_429(self, design_context):
        with serve_background(design_context, jobs=0, batch=1,
                              queue_limit=2, cache=None) as handle:
            occupants = [
                {"kind": "sleep", "duration": 1.2, "nonce": f"occupy-{i}"}
                for i in range(2)
            ]

            def _fire(request):
                with ServeClient(handle.url, timeout=30.0) as c:
                    return c.run(request, timeout=30.0)

            threads = [threading.Thread(target=_fire, args=(r,),
                                        daemon=True) for r in occupants]
            for thread in threads:
                thread.start()
                time.sleep(0.15)  # let each one be admitted
            with ServeClient(handle.url, timeout=30.0) as c:
                overflow = c.run({"kind": "sleep", "duration": 0.1,
                                  "nonce": "overflow"})
                assert overflow["status"] == 429
                assert overflow["error"] == "queue-full"
                assert overflow["queue_limit"] == 2
                assert overflow["retry_after_s"] > 0
                stats = c.stats()
            assert stats["rejected"] >= 1
            for thread in threads:
                thread.join(30.0)

    def test_deadline_expiry_is_structured_504(self, design_context):
        with serve_background(design_context, jobs=0, batch=1,
                              cache=None) as handle:
            with ServeClient(handle.url, timeout=30.0) as c:
                response = c.run({"kind": "sleep", "duration": 1.0,
                                  "nonce": "too-slow",
                                  "deadline_s": 0.15}, timeout=30.0)
            assert response["status"] == 504
            assert response["ok"] is False
            assert response["result"]["type"] == "cell_failure"
            assert response["result"]["reason"] == "timeout"

    def test_default_deadline_applies(self, design_context):
        with serve_background(design_context, jobs=0, batch=1, cache=None,
                              default_deadline=0.15) as handle:
            with ServeClient(handle.url, timeout=30.0) as c:
                response = c.run({"kind": "sleep", "duration": 1.0,
                                  "nonce": "server-deadline"},
                                 timeout=30.0)
            assert response["status"] == 504


class TestResultStoreResilience:
    def test_store_corruption_falls_back_to_fresh_execution(
            self, design_context, tmp_path):
        store_dir = tmp_path / "serve-store"
        request = {"kind": "run", "scheme": "coordinated-heuristic",
                   "workload": "mcf", "seed": 55, "max_time": 2.0,
                   "record": True}
        with serve_background(design_context, jobs=0, batch=1,
                              cache=str(store_dir)) as handle:
            with ServeClient(handle.url, timeout=60.0) as c:
                first = c.run(request, timeout=60.0)
                assert first["source"] == "executed"
                warm = c.run(request, timeout=60.0)
                assert warm["source"] == "cache"

                # corrupt every stored entry mid-flight
                corrupted = 0
                for root, _dirs, files in os.walk(store_dir):
                    for name in files:
                        path = os.path.join(root, name)
                        with open(path, "wb") as fh:
                            fh.write(b"\x00garbage, not a pickle\xff")
                        corrupted += 1
                assert corrupted >= 1

                # a corrupt entry is a miss: fresh execution, same bits
                again = c.run(request, timeout=60.0)
                assert again["source"] == "executed"
                assert json.dumps(again["result"], sort_keys=True) == \
                    json.dumps(first["result"], sort_keys=True)
                # ...and the re-execution repopulated the store
                rewarmed = c.run(request, timeout=60.0)
                assert rewarmed["source"] == "cache"


class TestObservabilityEndpoints:
    def test_status_text_and_json(self, client):
        text = client.status()
        assert isinstance(text, str) and text.strip()
        body = client.status(fmt="json")
        assert isinstance(body, dict)
        assert "serve" in body
        assert body["serve"]["requests_total"] >= 1

    def test_report_markdown_and_html(self, client):
        markdown = client.report()
        assert isinstance(markdown, str) and "#" in markdown
        html = client.report(html=True)
        assert "<html" in html.lower()

    def test_watch_streams_live_events(self, server):
        events = []
        done = threading.Event()

        def _subscribe():
            with ServeClient(server.url) as c:
                events.extend(c.watch(max_events=3, timeout=5.0))
            done.set()

        thread = threading.Thread(target=_subscribe, daemon=True)
        thread.start()
        time.sleep(0.4)  # let the subscription register
        with ServeClient(server.url, timeout=30.0) as c:
            c.run({"kind": "sleep", "duration": 0.05, "nonce": "watched"},
                  timeout=30.0)
        assert done.wait(10.0)
        assert events, "watcher saw no events"
        assert all(isinstance(e, dict) and "event" in e for e in events)

    def test_shutdown_endpoint_stops_server(self, design_context):
        handle = serve_background(design_context, jobs=0, batch=1,
                                  cache=None)
        try:
            with ServeClient(handle.url) as c:
                body = c.shutdown()
            assert body.get("ok", True)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if not handle._thread.is_alive():
                    break
                time.sleep(0.05)
        finally:
            handle.stop()


class TestCLI:
    @pytest.mark.parametrize("argv", [["serve", "--help"],
                                      ["loadgen", "--help"]])
    def test_subcommands_parse(self, argv, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--" in out
