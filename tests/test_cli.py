"""Tests for the command-line interface."""

import pytest


class TestCli:
    def test_tables_command(self, capsys):
        from repro.__main__ import main

        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table IV" in out

    def test_requires_command(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    @pytest.mark.slow
    def test_resilience_command(self, capsys):
        """The resilience command sweeps the quick fault matrix."""
        from repro.__main__ import main

        code = main(["resilience", "--quick", "--samples", "60", "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "heatsink-detach" in out
        assert "yukta-hwssv-osssv" in out
        assert "fault-free" in out

    @pytest.mark.slow
    def test_run_command(self, capsys, monkeypatch):
        """The run command builds a context and prints run metrics."""
        from repro.__main__ import main

        code = main(["run", "coordinated-heuristic", "h264ref",
                     "--samples", "60", "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ExD" in out
        assert "h264ref" in out
