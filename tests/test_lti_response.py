"""Tests for time-domain response helpers."""

import numpy as np
import pytest

from repro.lti import impulse_response, ss, step_info, step_response


class TestStepResponse:
    def test_first_order_discrete(self):
        # y[k+1] = 0.5 y[k] + 0.5 u: step settles at 1.
        sys_ = ss([[0.5]], [[0.5]], [[1.0]], dt=1.0)
        times, ys = step_response(sys_, steps=50)
        assert ys[-1, 0] == pytest.approx(1.0, abs=1e-6)
        assert times[1] - times[0] == pytest.approx(1.0)

    def test_continuous_autodiscretized(self):
        sys_ = ss([[-2.0]], [[2.0]], [[1.0]])
        times, ys = step_response(sys_)
        assert ys[-1, 0] == pytest.approx(1.0, rel=1e-2)

    def test_channel_selection(self):
        sys_ = ss([[0.5]], [[1.0, 0.0]], [[1.0]], dt=1.0)
        _, ys = step_response(sys_, steps=30, input_channel=1)
        assert np.allclose(ys, 0.0)  # second input has no effect

    def test_impulse_integrates_to_dc_gain(self):
        sys_ = ss([[0.5]], [[0.5]], [[1.0]], dt=1.0)
        times, ys = impulse_response(sys_, steps=100)
        # Sum of impulse response * dt = DC gain for a stable system.
        assert np.sum(ys[:, 0]) * 1.0 == pytest.approx(
            sys_.dc_gain()[0, 0], rel=1e-6
        )


class TestStepInfo:
    def test_first_order_metrics(self):
        # Continuous 1/(s+1): rise ~ ln(9) s, no overshoot.
        sys_ = ss([[-1.0]], [[1.0]], [[1.0]])
        info = step_info(sys_, dt=0.01)
        assert info.final_value == pytest.approx(1.0)
        assert info.rise_time == pytest.approx(np.log(9.0), rel=0.05)
        assert info.overshoot_percent == pytest.approx(0.0, abs=0.5)
        assert "settle" in info.summary()

    def test_underdamped_overshoots(self):
        # 1/(s^2 + 0.4 s + 1): damping 0.2 -> ~52% overshoot.
        sys_ = ss([[0.0, 1.0], [-1.0, -0.4]], [[0.0], [1.0]], [[1.0, 0.0]])
        info = step_info(sys_, dt=0.02)
        assert 35.0 < info.overshoot_percent < 65.0

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="stable"):
            step_info(ss([[0.1]], [[1.0]], [[1.0]]))
