"""Tests for layer specs (Tables II/III) and the end-to-end design flow."""

import numpy as np
import pytest

from repro.board import default_xu3_spec
from repro.core import (
    HW_OUTPUTS,
    SW_OUTPUTS,
    design_two_layer_system,
    hardware_layer_spec,
    software_layer_spec,
)
from repro.signals import exchange_interfaces


class TestLayerSpecs:
    def test_hardware_matches_table2(self):
        spec = hardware_layer_spec()
        assert spec.input_names() == [
            "n_big_cores", "n_little_cores", "freq_big", "freq_little"
        ]
        assert [s.weight for s in spec.inputs] == [1.0] * 4
        assert spec.output_names() == list(HW_OUTPUTS)
        assert [s.bound_fraction for s in spec.outputs] == [0.2, 0.1, 0.1, 0.1]
        assert spec.guardband == pytest.approx(0.40)
        assert spec.external_names() == ["n_threads_big", "tpc_big", "tpc_little"]

    def test_software_matches_table3(self):
        spec = software_layer_spec()
        assert spec.input_names() == ["n_threads_big", "tpc_big", "tpc_little"]
        assert [s.weight for s in spec.inputs] == [2.0] * 3
        assert spec.output_names() == list(SW_OUTPUTS)
        assert [s.bound_fraction for s in spec.outputs] == [0.2, 0.2, 0.2]
        assert spec.guardband == pytest.approx(0.50)

    def test_temperature_is_limit_style(self):
        spec = hardware_layer_spec()
        by_name = {s.name: s for s in spec.outputs}
        assert by_name["temperature"].enforce_as_limit
        assert not by_name["bips_total"].enforce_as_limit

    def test_overrides(self):
        spec = hardware_layer_spec()
        wider = spec.with_bounds([0.5, 0.25, 0.25, 0.25])
        assert wider.outputs[0].bound_fraction == 0.5
        heavier = spec.with_input_weights(2.0)
        assert all(s.weight == 2.0 for s in heavier.inputs)
        bigger = spec.with_guardband(2.5)
        assert bigger.guardband == 2.5
        ranged = spec.with_output_ranges([5.0, 4.0, 0.5, 30.0])
        assert ranged.outputs[0].value_range == 5.0

    def test_interface_exchange_covers_externals(self):
        hw = hardware_layer_spec()
        sw = software_layer_spec()
        for_hw, for_sw, _ = exchange_interfaces(
            hw.interface_record(), sw.interface_record()
        )
        published_to_hw = {s.name for s in for_hw}
        assert set(hw.external_names()) <= published_to_hw
        published_to_sw = {s.name for s in for_sw}
        assert set(sw.external_names()) <= published_to_sw

    def test_describe_renders(self):
        text = hardware_layer_spec().describe()
        assert "freq_big" in text
        assert "guardband" in text


@pytest.mark.slow
class TestDesignFlow:
    def test_two_layer_design(self, design_context):
        hw, sw, common = design_two_layer_system(
            hardware_layer_spec(design_context.spec),
            software_layer_spec(design_context.spec),
            design_context.characterization,
            reduce_to=20,
        )
        assert hw.controller.state_machine.n_states <= 20
        assert sw.controller.state_machine.n_states <= 20
        assert hw.controller.state_machine.is_stable()
        assert sw.controller.state_machine.is_stable()

    def test_hw_design_matches_paper_structure(self, hw_design):
        """The runtime state machine has the paper's Eq. 3-4 shape."""
        sm = hw_design.controller.state_machine
        assert sm.n_outputs == 4  # I = 4 inputs actuated
        assert sm.n_inputs == 4 + 3  # O + E signals
        assert sm.n_states <= 20  # N = 20 in the paper

    def test_design_reports_mu_and_fit(self, hw_design):
        assert hw_design.dk_result.mu.peak_upper > 0
        assert "fit per output" in hw_design.model_fit.summary()

    def test_controller_responds_sanely(self, hw_design):
        """Sustained want-more-of-everything must not wedge at minimum."""
        import copy

        ctrl = copy.deepcopy(hw_design.controller)
        ctrl.reset()
        ctrl.set_targets([5.0, 3.0, 0.25, 77.0])
        u = None
        for _ in range(60):
            u = ctrl.step([1.5, 0.8, 0.1, 55.0], [5.0, 1.5, 1.0])
        n_big, n_little, f_big, f_little = u
        assert f_big > 0.3  # not wedged at the minimum frequency
        assert n_big >= 2
