"""Tests for the LQG baseline synthesis."""

import numpy as np
import pytest

from repro.lti import StateSpace
from repro.lqg import lqg_synthesize


@pytest.fixture
def simple_model():
    return StateSpace(
        [[0.8, 0.1], [0.0, 0.7]],
        [[1.0, 0.2], [0.3, 0.8]],
        [[1.0, 0.0], [0.0, 1.0]],
        None,
        dt=0.5,
    )


class TestLQG:
    def test_synthesis_stabilizes(self, simple_model):
        result = lqg_synthesize(simple_model, n_u=2,
                                output_weights=[1.0, 1.0],
                                input_weights=[1.0, 1.0])
        assert result.closed_loop_stable
        assert result.controller.is_discrete

    def test_controller_dimensions(self, simple_model):
        result = lqg_synthesize(simple_model, n_u=2,
                                output_weights=[1.0, 1.0],
                                input_weights=[1.0, 1.0])
        # Kalman states + error integrators.
        assert result.controller.n_states == 2 + 2
        assert result.controller.n_inputs == 2  # output errors
        assert result.controller.n_outputs == 2  # plant inputs

    def test_tracking_via_integral_action(self, simple_model):
        """Closed loop on the nominal model tracks a constant target."""
        result = lqg_synthesize(simple_model, n_u=2,
                                output_weights=[1.0, 1.0],
                                input_weights=[0.5, 0.5])
        controller = result.controller
        x_p = np.zeros(2)
        x_c = np.zeros(controller.n_states)
        target = np.array([1.0, -0.5])
        y = np.zeros(2)
        for _ in range(300):
            err = y - target
            x_c, u = controller.step(x_c, err)
            y = simple_model.C @ x_p + simple_model.D[:, :2] @ u
            x_p = simple_model.A @ x_p + simple_model.B[:, :2] @ u
        # Leaky integrator: small residual tracking error is expected.
        assert y == pytest.approx(target, abs=0.1)

    def test_extra_model_inputs_ignored(self, simple_model):
        """Only the first n_u model columns are actuated."""
        result = lqg_synthesize(simple_model, n_u=1,
                                output_weights=[1.0, 1.0],
                                input_weights=[1.0])
        assert result.controller.n_outputs == 1

    def test_rejects_continuous_model(self):
        cont = StateSpace([[-1.0]], [[1.0]], [[1.0]])
        with pytest.raises(ValueError, match="discrete"):
            lqg_synthesize(cont, n_u=1, output_weights=[1.0], input_weights=[1.0])

    def test_rejects_wrong_weight_lengths(self, simple_model):
        with pytest.raises(ValueError, match="weight"):
            lqg_synthesize(simple_model, n_u=2, output_weights=[1.0],
                           input_weights=[1.0, 1.0])
