"""Edge cases of telemetry/merge.py: the worker-directory fold must stay
robust to empty, partial, duplicated, and corrupted worker output."""

import json

from repro.telemetry import TelemetrySession
from repro.telemetry.merge import merge_metrics_dicts, merge_worker_dirs


def _worker_session(parent, name):
    return TelemetrySession(parent / name)


def _counter_snapshot(name="jobs_total", value=1.0, labels=None):
    return {
        name: {
            "type": "counter",
            "help": "test counter",
            "values": [{"labels": labels or {}, "value": value}],
        }
    }


class TestMergeWorkerDirs:
    def test_no_worker_dirs(self, tmp_path):
        """A parent with no workers merges to an empty-but-valid snapshot."""
        merged = merge_worker_dirs(tmp_path)
        assert merged == {}
        assert (tmp_path / "metrics.json").is_file()
        assert json.loads((tmp_path / "metrics.json").read_text()) == {}
        assert not (tmp_path / "spans.jsonl").exists()

    def test_empty_worker_dirs(self, tmp_path):
        """Workers that crashed before writing anything are skipped."""
        (tmp_path / "worker-1").mkdir()
        (tmp_path / "worker-2").mkdir()
        merged = merge_worker_dirs(tmp_path)
        assert merged == {}

    def test_worker_with_unseen_counter_family(self, tmp_path):
        """A family only one worker ever saw survives the merge intact."""
        s1 = _worker_session(tmp_path, "worker-1")
        s1.periods.inc(3)
        s1.close()
        s2 = _worker_session(tmp_path, "worker-2")
        s2.periods.inc(2)
        # Only worker-2 ever trips the TMU family with this label.
        s2.tmu_trips.labels(type="thermal").inc(5)
        s2.close()
        merged = merge_worker_dirs(tmp_path)
        assert merged["control_periods_total"]["values"][0]["value"] == 5
        (trip_value,) = [
            v for v in merged["tmu_trips_total"]["values"]
            if v["labels"] == {"type": "thermal"}
        ]
        assert trip_value["value"] == 5

    def test_duplicate_span_files_both_kept_and_attributed(self, tmp_path):
        """The same spans in two worker dirs are both kept, each annotated
        with its own worker name — the merge never dedups silently."""
        span = {"name": "sim", "ts": 1.0, "dur": 0.5}
        for worker in ("worker-1", "worker-2"):
            wdir = tmp_path / worker
            wdir.mkdir()
            (wdir / "spans.jsonl").write_text(json.dumps(span) + "\n")
        merge_worker_dirs(tmp_path)
        lines = [
            json.loads(line)
            for line in (tmp_path / "spans.jsonl").read_text().splitlines()
        ]
        assert len(lines) == 2
        assert {line["worker"] for line in lines} == {"worker-1", "worker-2"}
        assert all(line["name"] == "sim" for line in lines)

    def test_unparsable_metrics_skipped(self, tmp_path):
        """A truncated metrics.json from a dying worker must not take the
        merged report down — its metrics are dropped, the rest merge."""
        bad = tmp_path / "worker-1"
        bad.mkdir()
        (bad / "metrics.json").write_text("{ truncated")
        good = _worker_session(tmp_path, "worker-2")
        good.periods.inc(4)
        good.close()
        merged = merge_worker_dirs(tmp_path)
        assert merged["control_periods_total"]["values"][0]["value"] == 4

    def test_unparsable_span_lines_skipped(self, tmp_path):
        wdir = tmp_path / "worker-1"
        wdir.mkdir()
        (wdir / "spans.jsonl").write_text(
            json.dumps({"name": "ok"}) + "\nnot json\n\n"
        )
        merge_worker_dirs(tmp_path)
        lines = (tmp_path / "spans.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "ok"

    def test_explicit_worker_dirs_argument(self, tmp_path):
        s1 = _worker_session(tmp_path, "other-name")
        s1.periods.inc(1)
        s1.close()
        merged = merge_worker_dirs(tmp_path,
                                   worker_dirs=[tmp_path / "other-name"])
        assert merged["control_periods_total"]["values"][0]["value"] == 1

    def test_prometheus_rerendered(self, tmp_path):
        s1 = _worker_session(tmp_path, "worker-1")
        s1.periods.inc(2)
        s1.close()
        merge_worker_dirs(tmp_path)
        prom = (tmp_path / "metrics.prom").read_text()
        assert "control_periods_total 2" in prom
        assert "# TYPE control_periods_total counter" in prom


class TestMergeMetricsDicts:
    def test_counters_sum_gauges_last_write_wins(self):
        a = _counter_snapshot(value=2.0)
        a["temp"] = {"type": "gauge", "help": "",
                     "values": [{"labels": {}, "value": 10.0}]}
        b = _counter_snapshot(value=3.0)
        b["temp"] = {"type": "gauge", "help": "",
                     "values": [{"labels": {}, "value": 20.0}]}
        merged = merge_metrics_dicts([a, b])
        assert merged["jobs_total"]["values"][0]["value"] == 5.0
        assert merged["temp"]["values"][0]["value"] == 20.0

    def test_disjoint_label_sets_kept_apart(self):
        a = _counter_snapshot(labels={"kind": "x"})
        b = _counter_snapshot(labels={"kind": "y"}, value=7.0)
        merged = merge_metrics_dicts([a, b])
        values = {
            json.dumps(v["labels"], sort_keys=True): v["value"]
            for v in merged["jobs_total"]["values"]
        }
        assert values == {'{"kind": "x"}': 1.0, '{"kind": "y"}': 7.0}

    def test_empty_input(self):
        assert merge_metrics_dicts([]) == {}
