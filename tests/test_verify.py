"""Tests for repro.verify: invariant monitor, oracles, golden traces.

The acceptance-critical cases live here: a nominal run produces zero
violations, a deliberately perturbed board is caught by the monitor, and a
deliberately perturbed trace is caught by the golden comparator.
"""

import copy
import json
import math
import struct
import types

import numpy as np
import pytest

from repro.board import BIG, LITTLE, Board
from repro.board.specs import default_xu3_spec
from repro.verify import (
    GOLDEN_MATRIX,
    InvariantMonitor,
    activate_monitor,
    active_monitor,
    capture_trace,
    compare_traces,
    deactivate_monitor,
    load_golden,
    oracle_cache,
    oracle_fastpath,
    oracle_lqg_reference,
    oracle_parallel_matrix,
    power_ceiling,
    run_verify,
    temperature_ceiling,
    ulp_distance,
    verify_goldens,
    write_golden,
)
from repro.workloads import make_application


def _next_after(x):
    bits = struct.unpack("<q", struct.pack("<d", x))[0]
    return struct.unpack("<d", struct.pack("<q", bits + 1))[0]


def _fresh_board(spec=None, seed=3, workload="blackscholes"):
    spec = spec if spec is not None else default_xu3_spec()
    return Board([make_application(workload)], spec=spec, seed=seed)


# ----------------------------------------------------------------------
# ULP distance
# ----------------------------------------------------------------------
class TestUlpDistance:
    def test_equal_is_zero(self):
        assert ulp_distance(1.0, 1.0) == 0
        assert ulp_distance(-3.5, -3.5) == 0

    def test_adjacent_is_one(self):
        assert ulp_distance(1.0, _next_after(1.0)) == 1
        assert ulp_distance(-1.0, -_next_after(1.0)) == 1

    def test_signed_zeros_are_equal(self):
        assert ulp_distance(0.0, -0.0) == 0

    def test_crosses_zero(self):
        tiny = struct.unpack("<d", struct.pack("<q", 1))[0]
        assert ulp_distance(tiny, -tiny) == 2

    def test_nan_conventions(self):
        nan = float("nan")
        assert ulp_distance(nan, nan) == 0
        assert math.isinf(ulp_distance(nan, 1.0))
        assert math.isinf(ulp_distance(1.0, nan))

    def test_symmetry_and_monotone(self):
        assert ulp_distance(1.0, 2.0) == ulp_distance(2.0, 1.0)
        assert ulp_distance(1.0, 4.0) > ulp_distance(1.0, 2.0)


# ----------------------------------------------------------------------
# Physical ceilings
# ----------------------------------------------------------------------
class TestCeilings:
    def test_power_ceiling_positive_and_generous(self):
        spec = default_xu3_spec()
        for name in (BIG, LITTLE):
            ceiling = power_ceiling(spec.cluster(name))
            assert ceiling > 0
            # The declared spec power limit must sit under the physical
            # ceiling, otherwise the ceiling check could never fire the
            # limit is meant to protect against.
            limit = getattr(spec, f"power_limit_{name}")
            assert ceiling > limit

    def test_temperature_ceiling_above_trip(self):
        spec = default_xu3_spec()
        t_max = temperature_ceiling(spec)
        assert t_max > spec.ambient_temp
        assert t_max > spec.emergency_temp_trip


# ----------------------------------------------------------------------
# Invariant monitor: nominal behavior
# ----------------------------------------------------------------------
class TestMonitorNominal:
    def test_fault_free_run_has_zero_violations(self, design_context):
        from repro.experiments import run_workload

        monitor = InvariantMonitor()
        run_workload("coordinated-heuristic", "blackscholes", design_context,
                     max_time=10.0, record=False, monitor=monitor)
        assert monitor.ok
        assert monitor.total_violations == 0
        assert monitor.periods_checked > 0
        assert "OK" in monitor.summary()

    def test_ssv_scheme_with_optimizers_clean(self, design_context):
        from repro.experiments import run_workload

        monitor = InvariantMonitor()
        run_workload("yukta-hwssv-osssv", "blackscholes", design_context,
                     max_time=10.0, record=False, monitor=monitor)
        assert monitor.ok, monitor.summary()

    def test_monolithic_lqg_loop_checked(self, design_context):
        from repro.experiments import run_workload

        monitor = InvariantMonitor()
        run_workload("monolithic-lqg", "blackscholes", design_context,
                     max_time=10.0, record=False, monitor=monitor)
        assert monitor.periods_checked > 0
        assert monitor.ok, monitor.summary()

    def test_process_wide_activation(self, design_context):
        from repro.experiments import run_workload

        monitor = InvariantMonitor()
        activate_monitor(monitor)
        try:
            assert active_monitor() is monitor
            run_workload("decoupled-heuristic", "blackscholes",
                         design_context, max_time=5.0, record=False)
        finally:
            deactivate_monitor()
        assert active_monitor() is None
        assert monitor.periods_checked > 0
        assert monitor.ok, monitor.summary()

    def test_check_board_standalone_on_fresh_board(self):
        board = _fresh_board()
        board.run_period(board.spec.period_steps())
        monitor = InvariantMonitor()
        violations = monitor.check_board(board)
        assert violations == []
        assert monitor.periods_checked == 1


# ----------------------------------------------------------------------
# Invariant monitor: deliberate perturbations must be caught
# ----------------------------------------------------------------------
class TestMonitorCatchesPerturbations:
    def test_off_grid_frequency(self):
        board = _fresh_board()
        board.run_period(board.spec.period_steps())
        board.clusters[BIG].frequency = 1.23456  # not a DVFS grid point
        monitor = InvariantMonitor()
        monitor.check_board(board)
        assert "actuation.freq-grid" in monitor.counts
        assert not monitor.ok

    def test_impossible_temperature(self):
        board = _fresh_board()
        board.run_period(board.spec.period_steps())
        board.thermal.temperature = temperature_ceiling(board.spec) + 40.0
        monitor = InvariantMonitor()
        monitor.check_board(board)
        assert "thermal.rc-ceiling" in monitor.counts
        # Way above the trip point without the TMU tripped is also flagged.
        assert "thermal.trip-consistency" in monitor.counts

    def test_subambient_temperature(self):
        board = _fresh_board()
        board.thermal.temperature = board.spec.ambient_temp - 5.0
        monitor = InvariantMonitor()
        monitor.check_board(board)
        assert "thermal.floor" in monitor.counts

    def test_core_count_off_grid(self):
        board = _fresh_board()
        board.clusters[LITTLE].cores_on = 99
        monitor = InvariantMonitor()
        monitor.check_board(board)
        assert "actuation.core-grid" in monitor.counts

    def test_negative_instant_power(self):
        board = _fresh_board()
        board.run_period(board.spec.period_steps())
        board._instant_power = dict(board._instant_power, **{BIG: -1.0})
        monitor = InvariantMonitor()
        monitor.check_board(board)
        assert "power.nonnegative" in monitor.counts

    def test_energy_regression(self):
        board = _fresh_board()
        board.run_period(board.spec.period_steps())
        monitor = InvariantMonitor()
        monitor.check_board(board)
        assert monitor.ok
        board.energy -= 1.0
        monitor.check_board(board)
        assert "board.energy-monotone" in monitor.counts

    def test_violation_event_structure(self):
        board = _fresh_board()
        board.clusters[BIG].frequency = 0.123456
        monitor = InvariantMonitor()
        (violation,) = [
            v for v in monitor.check_board(board)
            if v.check == "actuation.freq-grid"
        ]
        payload = violation.as_dict()
        assert payload["check"] == "actuation.freq-grid"
        assert payload["value"] == 0.123456
        assert "actuation.freq-grid" in str(violation)

    def test_max_violations_caps_storage_not_counts(self):
        board = _fresh_board()
        board.clusters[BIG].frequency = 0.123456
        monitor = InvariantMonitor(max_violations=3)
        for _ in range(10):
            monitor.check_board(board)
        assert len(monitor.violations) == 3
        assert monitor.counts["actuation.freq-grid"] == 10


class _FakeOptimizer:
    """Minimal ExD-optimizer stand-in (monitor keeps weak refs, so a real
    class rather than SimpleNamespace)."""

    def __init__(self, targets, moves=0, accepts=0, reverts=0):
        self.channels = [
            types.SimpleNamespace(name="power", role="free", low=0.0, high=8.0),
            types.SimpleNamespace(name="temp", role="fixed", low=0.0, high=80.0),
        ]
        self.targets = list(targets)
        self.moves = moves
        self.accepts = accepts
        self.reverts = reverts


class TestOptimizerChecks:
    @staticmethod
    def _fake_optimizer(targets, moves=0, accepts=0, reverts=0):
        return _FakeOptimizer(targets, moves, accepts, reverts)

    def test_in_envelope_clean(self):
        monitor = InvariantMonitor()
        opt = self._fake_optimizer([4.0, 999.0], moves=3, accepts=2, reverts=1)
        monitor.check_optimizer(opt)
        assert monitor.ok  # fixed channel exempt from the envelope

    def test_target_outside_envelope(self):
        monitor = InvariantMonitor()
        monitor.check_optimizer(self._fake_optimizer([9.5, 50.0]), layer="hw")
        assert "optimizer.hw.envelope" in monitor.counts

    def test_judgement_balance(self):
        monitor = InvariantMonitor()
        monitor.check_optimizer(
            self._fake_optimizer([4.0, 50.0], moves=5, accepts=1, reverts=1),
            layer="sw",
        )
        assert "optimizer.sw.judgement-balance" in monitor.counts

    def test_counter_regression(self):
        monitor = InvariantMonitor()
        opt = self._fake_optimizer([4.0, 50.0], moves=3, accepts=2, reverts=1)
        monitor.check_optimizer(opt)
        opt.moves, opt.accepts = 2, 2
        monitor.check_optimizer(opt)
        assert "optimizer.hw.counters-monotone" in monitor.counts

    def test_coordinator_shim_reaches_optimizers(self):
        board = _fresh_board()
        board.run_period(board.spec.period_steps())
        shim = types.SimpleNamespace(
            hw_optimizer=self._fake_optimizer([9.5, 50.0]), sw_optimizer=None
        )
        monitor = InvariantMonitor()
        monitor.check_period(board, coordinator=shim)
        assert "optimizer.hw.envelope" in monitor.counts


class TestMonitorTelemetry:
    def test_violations_counted_and_flight_dumped(self, tmp_path):
        from repro.telemetry import TelemetrySession

        session = TelemetrySession(tmp_path / "tel")
        monitor = InvariantMonitor(telemetry=session)
        board = _fresh_board()
        board.clusters[BIG].frequency = 0.123456
        monitor.check_board(board)
        monitor.check_board(board)
        value = session.registry.value(
            "invariant_violations_total", check="actuation.freq-grid"
        )
        assert value == 2
        # Exactly one flight dump per distinct check, not per violation.
        dumps = [p for p in (tmp_path / "tel").glob("flight-*.json")]
        assert len(dumps) == 1
        payload = json.loads(dumps[0].read_text())
        assert "actuation.freq-grid" in payload["reason"]
        session.close()


# ----------------------------------------------------------------------
# Differential oracles
# ----------------------------------------------------------------------
class TestOracles:
    def test_fastpath_bit_exact(self):
        result = oracle_fastpath(default_xu3_spec(), periods=12)
        assert result.agree, result.render()
        assert result.max_ulp == 0
        assert result.compared > 0

    def test_parallel_matrix_bit_exact(self, design_context):
        result = oracle_parallel_matrix(design_context, max_time=4.0, jobs=2)
        assert result.agree, result.render()
        assert result.max_ulp == 0

    def test_cache_round_trip_bit_exact(self, tmp_path):
        result = oracle_cache(tmp_path / "cache", samples=24)
        assert result.agree, result.render()
        assert result.max_ulp == 0

    def test_lqg_matches_textbook_reference(self):
        result = oracle_lqg_reference()
        assert result.agree, result.render()
        assert result.details["worst_rel_error"] < 1e-6
        assert "rtol" in result.render()

    def test_divergence_reporting(self):
        # A disagreeing pair must produce a localized first-divergence
        # report (step, signal, ULP), not silent agreement.
        from repro.verify.oracles import _Comparator

        cmp = _Comparator(tolerance_ulp=0.0)
        cmp.check(0, "power", 1.0, 1.0)
        cmp.check(1, "temperature", 1.0, 2.0)
        cmp.check(2, "temperature", 1.0, 8.0)  # worse, but not first
        result = cmp.result("demo")
        assert not result.agree
        assert result.divergence.step == 1
        assert result.divergence.signal == "temperature"
        assert result.max_ulp == ulp_distance(1.0, 8.0)
        assert "FAIL" in result.render()
        assert "first divergence" in result.render()

    def test_reference_recursion_tracks_model_changes(self):
        # The textbook reference must be sensitive to the plant: a
        # perturbed A matrix moves the reference gains well past rtol,
        # so a production-synthesis bug cannot hide behind a reference
        # that ignores its inputs.
        from repro.verify.oracles import (_default_lqg_model,
                                          _reference_lqg_gains)

        model = _default_lqg_model()
        weights = ([1.0] * model.n_outputs, [1.0] * model.n_inputs)
        ref = _reference_lqg_gains(model, model.n_inputs, *weights)
        bad_model = model.__class__(model.A * 1.05, model.B, model.C,
                                    model.D, dt=model.dt)
        bad = _reference_lqg_gains(bad_model, model.n_inputs, *weights)
        assert not np.allclose(ref[0], bad[0], rtol=1e-6)


# ----------------------------------------------------------------------
# Golden traces
# ----------------------------------------------------------------------
class TestGoldenTraces:
    def test_goldens_checked_in(self):
        for scheme, workload in GOLDEN_MATRIX:
            golden = load_golden(scheme, workload)
            assert golden is not None, f"missing golden {scheme}/{workload}"
            assert golden["format"] == 1
            assert golden["meta"]["scheme"] == scheme
            assert golden["signals"]["times"], "empty trace"

    def test_fresh_replay_matches_goldens(self, design_context):
        results = verify_goldens(design_context)
        for cell, mismatches in results.items():
            assert mismatches == [], (
                f"{cell}: " + "; ".join(str(m) for m in mismatches[:3])
            )

    def test_capture_is_deterministic(self, design_context):
        a = capture_trace("coordinated-heuristic", "blackscholes",
                          design_context, max_time=5.0)
        b = capture_trace("coordinated-heuristic", "blackscholes",
                          design_context, max_time=5.0)
        assert compare_traces(a, b) == []

    def test_comparator_catches_signal_perturbation(self, design_context):
        golden = load_golden(*GOLDEN_MATRIX[0])
        perturbed = copy.deepcopy(golden)
        perturbed["signals"]["power_big"][3] += 1e-3
        mismatches = compare_traces(golden, perturbed)
        assert any(m.location == "signals.power_big[3]" for m in mismatches)

    def test_comparator_catches_summary_perturbation(self, design_context):
        golden = load_golden(*GOLDEN_MATRIX[0])
        perturbed = copy.deepcopy(golden)
        perturbed["summary"]["energy"] *= 1.0 + 1e-6
        mismatches = compare_traces(golden, perturbed)
        assert any(m.location == "summary.energy" for m in mismatches)

    def test_comparator_tolerates_last_bit_drift(self):
        golden = load_golden(*GOLDEN_MATRIX[0])
        drifted = copy.deepcopy(golden)
        drifted["signals"]["power_big"] = [
            _next_after(v) if v > 0 else v
            for v in drifted["signals"]["power_big"]
        ]
        assert compare_traces(golden, drifted) == []

    def test_comparator_length_mismatch(self):
        golden = load_golden(*GOLDEN_MATRIX[0])
        truncated = copy.deepcopy(golden)
        truncated["signals"]["times"] = truncated["signals"]["times"][:-1]
        mismatches = compare_traces(golden, truncated)
        assert any("signals.times.length" == m.location for m in mismatches)

    def test_comparator_missing_signal(self):
        golden = load_golden(*GOLDEN_MATRIX[0])
        dropped = copy.deepcopy(golden)
        del dropped["signals"]["temperature"]
        mismatches = compare_traces(golden, dropped)
        assert any("signals.temperature" in m.location for m in mismatches)

    def test_comparator_bool_and_nan(self):
        a = {"summary": {"completed": True, "x": float("nan")},
             "signals": {}}
        b = {"summary": {"completed": False, "x": float("nan")},
             "signals": {}}
        mismatches = compare_traces(a, b)
        # completed flips -> mismatch; NaN vs NaN -> equal.
        assert [m.location for m in mismatches] == ["summary.completed"]

    def test_missing_golden_file_fails_loudly(self, design_context, tmp_path):
        results = verify_goldens(design_context, golden_dir=tmp_path,
                                 matrix=(("coordinated-heuristic",
                                          "blackscholes"),))
        (mismatches,) = results.values()
        assert mismatches[0].location == "golden-file-missing"

    def test_write_and_reload_round_trip(self, design_context, tmp_path):
        trace = capture_trace("coordinated-heuristic", "blackscholes",
                              design_context, max_time=5.0)
        write_golden(trace, "coordinated-heuristic", "blackscholes",
                     golden_dir=tmp_path)
        reloaded = load_golden("coordinated-heuristic", "blackscholes",
                               golden_dir=tmp_path)
        assert compare_traces(trace, reloaded) == []


# ----------------------------------------------------------------------
# End-to-end runner
# ----------------------------------------------------------------------
class TestRunVerify:
    def test_cli_dispatch(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(["verify", "--quick", "--regen-golden",
                     "--golden-dir", str(tmp_path), "--samples", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "VERIFY: PASS" in out
        from repro.verify.golden import RACK_GOLDEN_MATRIX

        expected = len(GOLDEN_MATRIX) + len(RACK_GOLDEN_MATRIX)
        assert len(list(tmp_path.glob("*.json"))) == expected

    def test_quick_regen_then_verify(self, tmp_path):
        report = run_verify(quick=True, regen_golden=True,
                            golden_dir=tmp_path, samples=32)
        assert report.ok, report.render()
        from repro.verify.golden import RACK_GOLDEN_MATRIX

        assert len(report.regenerated) == (len(GOLDEN_MATRIX)
                                           + len(RACK_GOLDEN_MATRIX))
        rendered = report.render()
        assert "VERIFY: PASS" in rendered
        assert "invariants: OK" in rendered
        for path in report.regenerated:
            assert path.is_file()
